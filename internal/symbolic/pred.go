package symbolic

import (
	"fmt"
	"strings"
)

// Star is the reserved name the paper writes as "*": the pattern-matching
// symbol that represents the current element in a range. Descriptor masks
// such as  miss[*] != 1  use it as the index of the masked dimension.
const Star Name = "*"

// CmpOp is a comparison operator in a predicate.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota // ==
	NE              // !=
	LT              // <
	LE              // <=
	GT              // >
	GE              // >=
)

// Negate returns the complementary operator (the operator c such that
// a c b  ==  !(a op b)).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	panic(fmt.Sprintf("symbolic: bad CmpOp %d", int(op)))
}

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// holds reports whether  lhs op rhs  for concrete integers.
func (op CmpOp) holds(lhs, rhs int64) bool {
	switch op {
	case EQ:
		return lhs == rhs
	case NE:
		return lhs != rhs
	case LT:
		return lhs < rhs
	case LE:
		return lhs <= rhs
	case GT:
		return lhs > rhs
	case GE:
		return lhs >= rhs
	}
	return false
}

// Atom is an operand of a predicate: either a linear expression or an
// array element reference. Array elements appear in guards such as
// mask[col] != 0, which the linear domain cannot express.
type Atom struct {
	// Array is empty for a pure expression atom; otherwise it names the
	// array and Index gives one expression per dimension.
	Array Name
	Index []Expr
	// E is the expression when Array is empty.
	E Expr
}

// ExprAtom wraps a linear expression.
func ExprAtom(e Expr) Atom { return Atom{E: e} }

// ElemAtom wraps an array element reference.
func ElemAtom(array Name, index ...Expr) Atom {
	return Atom{Array: array, Index: index}
}

// IsElem reports whether the atom is an array element reference.
func (a Atom) IsElem() bool { return a.Array != "" }

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Array != b.Array || len(a.Index) != len(b.Index) {
		return false
	}
	for i := range a.Index {
		if !a.Index[i].Equal(b.Index[i]) {
			return false
		}
	}
	if a.Array != "" {
		return true
	}
	return a.E.Equal(b.E)
}

// Subst replaces name n with expression v throughout the atom.
func (a Atom) Subst(n Name, v Expr) Atom {
	if a.Array == "" {
		return Atom{E: a.E.Subst(n, v)}
	}
	idx := make([]Expr, len(a.Index))
	for i, e := range a.Index {
		idx[i] = e.Subst(n, v)
	}
	return Atom{Array: a.Array, Index: idx}
}

// Uses reports whether name n appears anywhere in the atom.
func (a Atom) Uses(n Name) bool {
	if a.Array == "" {
		return a.E.Uses(n)
	}
	for _, e := range a.Index {
		if e.Uses(n) {
			return true
		}
	}
	return false
}

// String renders the atom.
func (a Atom) String() string {
	if a.Array == "" {
		return a.E.String()
	}
	parts := make([]string, len(a.Index))
	for i, e := range a.Index {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s[%s]", a.Array, strings.Join(parts, ","))
}

// Pred is a single comparison predicate  Lhs Op Rhs. Predicates appear
// as branch-condition assertions, descriptor guards, and masks.
type Pred struct {
	Lhs Atom
	Op  CmpOp
	Rhs Atom
}

// NewPred builds a predicate.
func NewPred(lhs Atom, op CmpOp, rhs Atom) Pred { return Pred{Lhs: lhs, Op: op, Rhs: rhs} }

// CmpExpr builds a predicate over two linear expressions.
func CmpExpr(lhs Expr, op CmpOp, rhs Expr) Pred {
	return Pred{Lhs: ExprAtom(lhs), Op: op, Rhs: ExprAtom(rhs)}
}

// Negate returns the logical complement of p.
func (p Pred) Negate() Pred { return Pred{Lhs: p.Lhs, Op: p.Op.Negate(), Rhs: p.Rhs} }

// Subst replaces name n with expression v throughout p.
func (p Pred) Subst(n Name, v Expr) Pred {
	return Pred{Lhs: p.Lhs.Subst(n, v), Op: p.Op, Rhs: p.Rhs.Subst(n, v)}
}

// Uses reports whether name n appears in p.
func (p Pred) Uses(n Name) bool { return p.Lhs.Uses(n) || p.Rhs.Uses(n) }

// Equal reports structural equality.
func (p Pred) Equal(q Pred) bool {
	return p.Op == q.Op && p.Lhs.Equal(q.Lhs) && p.Rhs.Equal(q.Rhs)
}

// Equivalent reports whether p and q denote the same predicate, allowing
// for operand order (a == b vs b == a) and linear normalization
// (a < b vs a-b < 0).
func (p Pred) Equivalent(q Pred) bool {
	if p.Equal(q) {
		return true
	}
	// Symmetric operators allow swapped operands.
	if (p.Op == EQ || p.Op == NE) && p.Op == q.Op &&
		p.Lhs.Equal(q.Rhs) && p.Rhs.Equal(q.Lhs) {
		return true
	}
	// Flipped comparisons: a < b == b > a.
	if q.Op == flip(p.Op) && p.Lhs.Equal(q.Rhs) && p.Rhs.Equal(q.Lhs) {
		return true
	}
	// Linear normalization for pure-expression predicates.
	pd, pok := p.diff()
	qd, qok := q.diff()
	if pok && qok && p.Op == q.Op && pd.Equal(qd) {
		return true
	}
	return false
}

// flip mirrors a comparison across its operands: a op b == b flip(op) a.
func flip(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op
}

// diff returns Lhs-Rhs for pure-expression predicates.
func (p Pred) diff() (Expr, bool) {
	if p.Lhs.IsElem() || p.Rhs.IsElem() {
		return Expr{}, false
	}
	return p.Lhs.E.Sub(p.Rhs.E), true
}

// ConstTruth reports the truth value of p when it is decidable from
// constants alone; ok is false otherwise.
func (p Pred) ConstTruth() (truth, ok bool) {
	d, isLinear := p.diff()
	if !isLinear {
		return false, false
	}
	c, isConst := d.IsConst()
	if !isConst {
		return false, false
	}
	return p.Op.holds(c, 0), true
}

// Contradicts reports whether p and q can be shown mutually exclusive.
func (p Pred) Contradicts(q Pred) bool {
	if p.Negate().Equivalent(q) {
		return true
	}
	// Linear reasoning: both predicates about the same difference.
	pd, pok := p.diff()
	qd, qok := q.diff()
	if !pok || !qok {
		// Same array element compared against two different constants
		// with EQ on both sides: a[i] == 1 contradicts a[i] == 2.
		if p.Op == EQ && q.Op == EQ && p.Lhs.Equal(q.Lhs) &&
			!p.Rhs.IsElem() && !q.Rhs.IsElem() {
			pc, ok1 := p.Rhs.E.IsConst()
			qc, ok2 := q.Rhs.E.IsConst()
			return ok1 && ok2 && pc != qc
		}
		return false
	}
	if pd.Equal(qd) {
		return rangesOfOpsDisjoint(p.Op, q.Op, 0)
	}
	// pd and qd differ by a constant k: p about d, q about d-k.
	if delta, ok := pd.Sub(qd).IsConst(); ok {
		return rangesOfOpsDisjoint(p.Op, q.Op, delta)
	}
	return false
}

// rangesOfOpsDisjoint reports whether {d : d opP 0} and {d : d-delta opQ 0}
// are disjoint sets of integers, i.e. no d satisfies both d opP 0 and
// (d-delta) opQ 0.
func rangesOfOpsDisjoint(opP, opQ CmpOp, delta int64) bool {
	loP, hiP := opInterval(opP, 0)
	loQ, hiQ := opInterval(opQ, delta)
	if loP == nil && hiP == nil || loQ == nil && hiQ == nil {
		return false // NE gives no interval
	}
	// Intersect [loP,hiP] with [loQ,hiQ]; disjoint if empty.
	lo := maxPtr(loP, loQ)
	hi := minPtr(hiP, hiQ)
	if lo != nil && hi != nil && *lo > *hi {
		return true
	}
	// EQ vs NE on the same point.
	if opP == EQ && opQ == NE && delta == 0 {
		return true
	}
	if opP == NE && opQ == EQ && delta == 0 {
		return true
	}
	return false
}

// opInterval returns the closed integer interval {d : (d-shift) op 0} as
// optional bounds (nil = unbounded). NE returns (nil, nil).
func opInterval(op CmpOp, shift int64) (lo, hi *int64) {
	v := func(x int64) *int64 { return &x }
	switch op {
	case EQ:
		return v(shift), v(shift)
	case LT:
		return nil, v(shift - 1)
	case LE:
		return nil, v(shift)
	case GT:
		return v(shift + 1), nil
	case GE:
		return v(shift), nil
	}
	return nil, nil
}

func maxPtr(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if *a > *b {
		return a
	}
	return b
}

func minPtr(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if *a < *b {
		return a
	}
	return b
}

// String renders the predicate.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.Lhs, p.Op, p.Rhs)
}
