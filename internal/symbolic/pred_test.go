package symbolic

import "testing"

func TestCmpOpNegate(t *testing.T) {
	cases := map[CmpOp]CmpOp{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for op, want := range cases {
		if got := op.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", op, got, want)
		}
		if op.Negate().Negate() != op {
			t.Errorf("%v double negation not identity", op)
		}
	}
}

func TestPredConstTruth(t *testing.T) {
	for _, tc := range []struct {
		p     Pred
		truth bool
	}{
		{CmpExpr(Const(3), LT, Const(5)), true},
		{CmpExpr(Const(5), LT, Const(3)), false},
		{CmpExpr(Const(4), EQ, Const(4)), true},
		{CmpExpr(Const(4), NE, Const(4)), false},
		{CmpExpr(Const(4), GE, Const(4)), true},
	} {
		truth, ok := tc.p.ConstTruth()
		if !ok || truth != tc.truth {
			t.Errorf("%v: truth=%v ok=%v, want %v", tc.p, truth, ok, tc.truth)
		}
	}
	if _, ok := CmpExpr(Var("i"), LT, Const(5)).ConstTruth(); ok {
		t.Fatal("symbolic predicate must not be const-decidable")
	}
	if _, ok := NewPred(ElemAtom("a", Var("i")), EQ, ExprAtom(Const(0))).ConstTruth(); ok {
		t.Fatal("array predicate must not be const-decidable")
	}
}

func TestPredEquivalent(t *testing.T) {
	i, n := Var("i"), Var("n")
	// a == b vs b == a
	if !CmpExpr(i, EQ, n).Equivalent(CmpExpr(n, EQ, i)) {
		t.Fatal("symmetric EQ not equivalent")
	}
	// a < b vs b > a
	if !CmpExpr(i, LT, n).Equivalent(CmpExpr(n, GT, i)) {
		t.Fatal("flipped LT not equivalent")
	}
	// i < n vs i - n < 0
	if !CmpExpr(i, LT, n).Equivalent(CmpExpr(i.Sub(n), LT, Const(0))) {
		t.Fatal("normalized form not equivalent")
	}
	if CmpExpr(i, LT, n).Equivalent(CmpExpr(i, LE, n)) {
		t.Fatal("LT equivalent to LE")
	}
}

func TestPredContradicts(t *testing.T) {
	i := Var("i")
	a := ElemAtom("mask", Var("col"))
	zero := ExprAtom(Const(0))
	for _, tc := range []struct {
		p, q Pred
		want bool
	}{
		{NewPred(a, NE, zero), NewPred(a, EQ, zero), true},
		{NewPred(a, EQ, zero), NewPred(a, EQ, ExprAtom(Const(1))), true},
		{NewPred(a, EQ, zero), NewPred(a, EQ, zero), false},
		{CmpExpr(i, LT, Const(5)), CmpExpr(i, GT, Const(7)), true},
		{CmpExpr(i, LT, Const(5)), CmpExpr(i, GT, Const(3)), false},
		{CmpExpr(i, EQ, Const(5)), CmpExpr(i, EQ, Const(6)), true},
		{CmpExpr(i, LE, Const(5)), CmpExpr(i, GE, Const(6)), true},
		{CmpExpr(i, LE, Const(5)), CmpExpr(i, GE, Const(5)), false},
		// Different arrays never contradict.
		{NewPred(a, EQ, zero), NewPred(ElemAtom("other", Var("col")), NE, zero), false},
	} {
		if got := tc.p.Contradicts(tc.q); got != tc.want {
			t.Errorf("(%v) contradicts (%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.q.Contradicts(tc.p); got != tc.want {
			t.Errorf("contradicts not symmetric for (%v),(%v)", tc.p, tc.q)
		}
	}
}

func TestPredSubst(t *testing.T) {
	p := NewPred(ElemAtom("mask", Var("col")), NE, ExprAtom(Const(0)))
	q := p.Subst("col", Var("i"))
	want := NewPred(ElemAtom("mask", Var("i")), NE, ExprAtom(Const(0)))
	if !q.Equal(want) {
		t.Fatalf("subst = %v", q)
	}
	if p.Uses("i") {
		t.Fatal("original mutated")
	}
}

func TestAtomString(t *testing.T) {
	a := ElemAtom("q", Var("i"), Var("col"))
	if a.String() != "q[i,col]" {
		t.Fatalf("String = %q", a.String())
	}
	p := NewPred(a, NE, ExprAtom(Const(0)))
	if p.String() != "q[i,col] != 0" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestConjProvesFalse(t *testing.T) {
	i := Var("i")
	c := Conj{}.And(CmpExpr(i, LT, Const(5))).And(CmpExpr(i, GT, Const(10)))
	if !c.ProvesFalse() {
		t.Fatal("contradictory conjunction not detected")
	}
	ok := Conj{}.And(CmpExpr(i, GE, Const(1))).And(CmpExpr(i, LE, Const(10)))
	if ok.ProvesFalse() {
		t.Fatal("satisfiable conjunction reported false")
	}
	constFalse := Conj{CmpExpr(Const(1), EQ, Const(2))}
	if !constFalse.ProvesFalse() {
		t.Fatal("constant-false predicate not detected")
	}
}

func TestConjImplies(t *testing.T) {
	i := Var("i")
	c := Conj{CmpExpr(i, GE, Const(5))}
	for _, tc := range []struct {
		p    Pred
		want bool
	}{
		{CmpExpr(i, GE, Const(5)), true},
		{CmpExpr(i, GE, Const(4)), true},
		{CmpExpr(i, GT, Const(4)), true},
		{CmpExpr(i, GE, Const(6)), false},
		{CmpExpr(i, LE, Const(4)), false},
		{CmpExpr(Const(1), LT, Const(2)), true}, // constant truth
	} {
		if got := c.Implies(tc.p); got != tc.want {
			t.Errorf("%v implies %v = %v, want %v", c, tc.p, got, tc.want)
		}
	}
}

func TestConjAndDeduplicates(t *testing.T) {
	p := CmpExpr(Var("i"), LT, Var("n"))
	c := Conj{}.And(p).And(p).And(CmpExpr(Var("n"), GT, Var("i")))
	if len(c) != 1 {
		t.Fatalf("dedup failed: %v", c)
	}
}

func TestAssertionTruthTable(t *testing.T) {
	if !True().IsTrue() || True().IsFalse() {
		t.Fatal("True() wrong")
	}
	if !False().IsFalse() || False().IsTrue() {
		t.Fatal("False() wrong")
	}
	if !True().Or(False()).IsTrue() {
		t.Fatal("true or false")
	}
	if !True().And(False()).IsFalse() {
		t.Fatal("true and false")
	}
	if !False().Not().IsTrue() || !True().Not().IsFalse() {
		t.Fatal("Not on constants")
	}
}

func TestAssertionAndContradiction(t *testing.T) {
	i := Var("i")
	a := FromPred(CmpExpr(i, LT, Const(5)))
	b := FromPred(CmpExpr(i, GT, Const(10)))
	if !a.And(b).IsFalse() {
		t.Fatal("contradictory conjunction not pruned")
	}
	if a.Or(b).IsFalse() {
		t.Fatal("disjunction of satisfiables reported false")
	}
}

func TestAssertionNotRoundTrip(t *testing.T) {
	p := CmpExpr(Var("i"), LT, Const(5))
	a := FromPred(p)
	na := a.Not()
	// not(i < 5) == i >= 5
	if !na.Implies(CmpExpr(Var("i"), GE, Const(5))) {
		t.Fatalf("negation = %v", na)
	}
	nna := na.Not()
	if !nna.Implies(p) {
		t.Fatalf("double negation = %v", nna)
	}
}

func TestAssertionImplies(t *testing.T) {
	i := Var("i")
	// (i >= 5) or (i >= 7) implies i >= 5
	a := FromPred(CmpExpr(i, GE, Const(5))).Or(FromPred(CmpExpr(i, GE, Const(7))))
	if !a.Implies(CmpExpr(i, GE, Const(5))) {
		t.Fatal("disjunction implication failed")
	}
	if a.Implies(CmpExpr(i, GE, Const(7))) {
		t.Fatal("over-strong implication")
	}
	// False implies anything.
	if !False().Implies(CmpExpr(i, EQ, Const(99))) {
		t.Fatal("false must imply everything")
	}
}

func TestAssertionStrings(t *testing.T) {
	i := Var("i")
	a := FromPred(CmpExpr(i, GE, Const(1))).And(FromPred(CmpExpr(i, LE, Var("n"))))
	if got := a.String(); got != "i >= 1 && i <= n" && got != "i - n <= 0 && i >= 1" {
		// Accept canonical rendering only; this pins formatting.
		if got != "i >= 1 && i <= n" {
			t.Fatalf("String = %q", got)
		}
	}
	if True().String() != "true" || False().String() != "false" {
		t.Fatal("constant strings")
	}
}
