package rts

import (
	"errors"
	"strings"
	"testing"

	"orchestra/internal/fault"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
)

func TestRunOptsValidate(t *testing.T) {
	good := []RunOpts{
		{},
		{Processors: 64, Mode: ModeSplit, Omega: 2.5},
		NewRunOpts(WithProcessors(8), WithMode(ModeTaper), WithOmega(1),
			WithSink(&obs.Collector{}), WithPinnedWorkers(), WithProfileLabels()),
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", o, err)
		}
	}
	bad := []RunOpts{
		{Mode: Mode(42)},
		{Processors: -1},
		{Omega: -0.5},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("%+v: invalid options accepted", o)
		}
	}
}

func TestNewRunOptsAppliesOptions(t *testing.T) {
	sink := &obs.Collector{}
	o := NewRunOpts(WithProcessors(17), WithMode(ModeSplit), WithOmega(3.5),
		WithSink(sink), WithPinnedWorkers(), WithProfileLabels())
	if o.Processors != 17 || o.Mode != ModeSplit || o.Omega != 3.5 ||
		o.Sink != sink || !o.Pin || !o.Labels {
		t.Fatalf("options not applied: %+v", o)
	}
	if z := NewRunOpts(); z != (RunOpts{}) {
		t.Fatalf("no options should give the zero value, got %+v", z)
	}
}

func TestProcessorsDefault(t *testing.T) {
	if got := (RunOpts{}).processors(64); got != 64 {
		t.Fatalf("zero Processors should take the backend default, got %d", got)
	}
	if got := (RunOpts{Processors: 8}).processors(64); got != 8 {
		t.Fatalf("explicit Processors overridden: %d", got)
	}
}

// TestParseModeRoundTrip checks that every mode survives
// ParseMode(m.String()) and that the command-line spellings resolve.
func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeStatic, ModeTaper, ModeSplit} {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	for in, want := range map[string]Mode{
		"static": ModeStatic, "STATIC": ModeStatic,
		"taper": ModeTaper, "Taper": ModeTaper,
		"split": ModeSplit, "taper+split": ModeSplit,
	} {
		if got, err := ParseMode(in); err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("ParseMode should reject and name bad input, got %v", err)
	}
}

func TestParseModes(t *testing.T) {
	all, err := ParseModes("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("ParseModes(all) = %v, %v", all, err)
	}
	list, err := ParseModes("static, split")
	if err != nil || len(list) != 2 || list[0] != ModeStatic || list[1] != ModeSplit {
		t.Fatalf("ParseModes list = %v, %v", list, err)
	}
	if _, err := ParseModes("taper,bogus"); err == nil {
		t.Fatal("ParseModes accepted an invalid entry")
	}
}

// TestCheckSupported is the option-validation table: every RunOpts
// field outside a backend's declared capability set must surface as a
// structured *OptionError naming exactly the offending fields, and
// supported (or default) options must pass silently.
func TestCheckSupported(t *testing.T) {
	all := Supported{Pin: true, Labels: true, Chain: true, Fault: true}
	none := Supported{}
	plan := &fault.Plan{}
	cases := []struct {
		name       string
		opts       RunOpts
		sup        Supported
		wantFields []string
	}{
		{"defaults pass anywhere", RunOpts{}, none, nil},
		{"everything supported", RunOpts{Pin: true, Labels: true, Chain: ChainOff, Fault: plan}, all, nil},
		{"pin unsupported", RunOpts{Pin: true}, none, []string{"Pin"}},
		{"labels unsupported", RunOpts{Labels: true}, none, []string{"Labels"}},
		{"chain unsupported", RunOpts{Chain: ChainOff}, none, []string{"Chain"}},
		{"chain auto is a default", RunOpts{Chain: ChainAuto}, none, nil},
		{"fault unsupported", RunOpts{Fault: plan}, none, []string{"Fault"}},
		{"several at once", RunOpts{Pin: true, Labels: true, Fault: plan},
			Supported{Fault: true}, []string{"Pin", "Labels"}},
		{"sim-shaped set", RunOpts{Pin: true, Chain: ChainOff},
			Supported{Chain: true, Fault: true}, []string{"Pin"}},
	}
	for _, c := range cases {
		err := c.opts.CheckSupported("testbe", c.sup)
		if c.wantFields == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v is not an *OptionError", c.name, err)
			continue
		}
		if oe.Backend != "testbe" {
			t.Errorf("%s: backend %q, want %q", c.name, oe.Backend, "testbe")
		}
		if len(oe.Fields) != len(c.wantFields) {
			t.Errorf("%s: fields %v, want %v", c.name, oe.Fields, c.wantFields)
			continue
		}
		for i := range oe.Fields {
			if oe.Fields[i] != c.wantFields[i] {
				t.Errorf("%s: fields %v, want %v", c.name, oe.Fields, c.wantFields)
				break
			}
		}
		for _, f := range c.wantFields {
			if !strings.Contains(err.Error(), f) {
				t.Errorf("%s: message %q does not name field %s", c.name, err, f)
			}
		}
	}
}

// TestCheckOptionsUnknownKeys covers the BackendConfig.Options side of
// the same contract: unknown keys are rejected with the known set
// attached, never silently ignored.
func TestCheckOptionsUnknownKeys(t *testing.T) {
	if err := CheckOptions("be", map[string]string{"a": "1"}, "a", "b"); err != nil {
		t.Fatalf("known key rejected: %v", err)
	}
	err := CheckOptions("be", map[string]string{"z": "1", "a": "2", "q": "3"}, "a")
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an *OptionError", err)
	}
	if len(oe.Fields) != 2 || oe.Fields[0] != "q" || oe.Fields[1] != "z" {
		t.Fatalf("fields %v, want sorted [q z]", oe.Fields)
	}
	if len(oe.Known) != 1 || oe.Known[0] != "a" {
		t.Fatalf("known %v, want [a]", oe.Known)
	}
	if !strings.Contains(err.Error(), "known: a") {
		t.Fatalf("message %q does not list the known keys", err)
	}
}

// TestRunGraphSinkDelivery checks that a Sink receives the completed
// trace with events from both backpressure paths: chunk spans and
// taper decisions, on the shared timeline across operators.
func TestRunGraphSinkDelivery(t *testing.T) {
	g := dagGraph(t, [][2]string{{"a", "b"}}, nil, "a", "b")
	bind := func(string) OpSpec { return irregularSpec(256, 3) }
	cfg := machine.DefaultConfig(16)
	var col obs.Collector
	r, err := RunGraph(cfg, g, bind, RunOpts{Processors: 16, Mode: ModeTaper, Sink: &col})
	if err != nil {
		t.Fatal(err)
	}
	tr := col.Trace
	if tr == nil {
		t.Fatal("sink never received a trace")
	}
	if tr.Backend != "sim" || tr.Workers != 16 || len(tr.Ops) != 2 {
		t.Fatalf("trace metadata: backend %q workers %d ops %v", tr.Backend, tr.Workers, tr.Ops)
	}
	if tr.Result.Makespan != r.Makespan {
		t.Fatal("trace result differs from the returned result")
	}
	var chunks, tapers int
	var maxT1 float64
	for _, e := range tr.Events {
		switch e.Kind {
		case obs.KindChunk:
			chunks++
			if e.T1 > maxT1 {
				maxT1 = e.T1
			}
		case obs.KindTaper:
			tapers++
		}
	}
	if chunks != r.Chunks {
		t.Errorf("trace has %d chunk spans, result counted %d", chunks, r.Chunks)
	}
	if tapers == 0 {
		t.Error("TAPER mode recorded no taper decisions")
	}
	if maxT1 > r.Makespan+1e-9 {
		t.Errorf("a chunk span ends at %v, after the makespan %v", maxT1, r.Makespan)
	}
}

// TestRunGraphNoSinkNoTrace checks the disabled path stays disabled.
func TestRunGraphNoSinkNoTrace(t *testing.T) {
	g := dagGraph(t, nil, nil, "a")
	bind := func(string) OpSpec { return uniformSpec(64, 1) }
	if _, err := RunGraph(machine.DefaultConfig(4), g, bind, RunOpts{Processors: 4, Mode: ModeSplit}); err != nil {
		t.Fatal(err)
	}
}

// TestRunGraphRejectsInvalidOpts checks options are validated before
// execution on both RunGraph and ExecuteDAG.
func TestRunGraphRejectsInvalidOpts(t *testing.T) {
	g := dagGraph(t, nil, nil, "a")
	bind := func(string) OpSpec { return uniformSpec(8, 1) }
	if _, err := RunGraph(machine.DefaultConfig(4), g, bind, RunOpts{Mode: Mode(9)}); err == nil {
		t.Fatal("RunGraph accepted an unknown mode")
	}
	if _, err := ExecuteDAG(machine.DefaultConfig(4), g, bind, RunOpts{Processors: -2}); err == nil {
		t.Fatal("ExecuteDAG accepted a negative processor count")
	}
}
