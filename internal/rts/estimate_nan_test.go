package rts

import (
	"math"
	"testing"

	"orchestra/internal/machine"
	"orchestra/internal/sched"
)

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func checkEstimate(t *testing.T, label string, e Estimate) {
	t.Helper()
	for _, term := range []struct {
		name string
		v    float64
	}{
		{"setup", e.Setup}, {"compute", e.Compute}, {"lag", e.Lag},
		{"comm", e.Comm}, {"sched", e.Sched}, {"total", e.Total()},
	} {
		if !finite(term.v) {
			t.Errorf("%s: %s = %v", label, term.name, term.v)
		}
	}
}

// TestSampleStatsSingleSample is the regression for the NaN crop: one
// observed sample must leave Sigma clamped to 0, not NaN from the n-1
// division, and re-sampling must overwrite a stale Sigma.
func TestSampleStatsSingleSample(t *testing.T) {
	s := OpSpec{Op: sched.Op{N: 1, Time: func(int) float64 { return 2 }}}
	s.SampleStats(1)
	if s.Mu != 2 || s.Sigma != 0 {
		t.Fatalf("single sample: mu=%v sigma=%v, want 2, 0", s.Mu, s.Sigma)
	}
	// Stale Sigma from an earlier (spread-out) sampling pass must not
	// survive a re-sample that observes only one task.
	s2 := irregularSpec(5000, 3)
	if s2.Sigma <= 0 {
		t.Fatal("setup: irregular sigma should be positive")
	}
	s2.Op.N = 1
	s2.SampleStats(8)
	if s2.Sigma != 0 {
		t.Fatalf("re-sample with n=1 kept stale sigma %v", s2.Sigma)
	}
	// k larger than N must not manufacture samples.
	s3 := OpSpec{Op: sched.Op{N: 1, Time: func(int) float64 { return 5 }}}
	s3.SampleStats(64)
	if s3.Mu != 5 || s3.Sigma != 0 {
		t.Fatalf("k>N: mu=%v sigma=%v", s3.Mu, s3.Sigma)
	}
}

// TestEstimatorNeverEmitsNaN sweeps the estimator, chunk predictor and
// allocators across degenerate inputs — zero tasks, single samples,
// poisoned Mu/Sigma — and asserts no NaN/Inf ever escapes.
func TestEstimatorNeverEmitsNaN(t *testing.T) {
	cfg := machine.DefaultConfig(8)
	nan, inf := math.NaN(), math.Inf(1)
	muSigma := [][2]float64{
		{0, 0}, {1, 0}, {1, 0.5}, {0, 1},
		{nan, 0.5}, {1, nan}, {nan, nan},
		{inf, 1}, {1, inf}, {-1, -1},
	}
	for _, n := range []int{0, 1, 2, 100} {
		for _, p := range []int{0, 1, 2, 8} {
			for _, ms := range muSigma {
				spec := OpSpec{
					Op:         sched.Op{N: n, Time: func(int) float64 { return 1 }},
					Mu:         ms[0],
					Sigma:      ms[1],
					SetupBytes: 256,
					CommBytes:  func(n, p int) int64 { return int64(n) },
				}
				label := "estimate"
				checkEstimate(t, label, FinishEstimate(cfg, spec, p))
				if c := PredictChunks(n, p, cv(spec)); c < 0 || (n > 0 && p >= 1 && c == 0) {
					t.Errorf("PredictChunks(%d, %d, cv(%v,%v)) = %d", n, p, ms[0], ms[1], c)
				}
			}
		}
	}
	if c := PredictChunks(100, 4, nan); c <= 0 {
		t.Errorf("PredictChunks with NaN cv = %d", c)
	}

	// Poisoned specs must still yield a full, positive allocation.
	bad := OpSpec{Op: sched.Op{N: 50, Time: func(int) float64 { return 1 }}, Mu: nan, Sigma: inf}
	good := uniformSpec(100, 2)
	p1, p2 := AllocateSpecs(cfg, bad, good, 8)
	if p1+p2 != 8 || p1 < 1 || p2 < 1 {
		t.Fatalf("AllocateSpecs with poisoned spec: %d + %d", p1, p2)
	}
	alloc := AllocateMany(cfg, []OpSpec{bad, good, uniformSpec(10, 1)}, 8, nil)
	sum := 0
	for i, a := range alloc {
		if a < 1 {
			t.Fatalf("AllocateMany gave op %d %d processors", i, a)
		}
		sum += a
	}
	if sum != 8 {
		t.Fatalf("AllocateMany distributed %d of 8 processors", sum)
	}
}
