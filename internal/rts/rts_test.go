package rts

import (
	"math"
	"testing"

	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
	"orchestra/internal/stats"
)

func uniformSpec(n int, t float64) OpSpec {
	s := OpSpec{Op: sched.Op{Name: "u", N: n, Time: func(int) float64 { return t }, Bytes: 64}}
	s.SampleStats(64)
	return s
}

// boundedIrregularSpec is the steady-state regime of the paper's
// applications: bimodal bounded task times with warm cost hints.
func boundedIrregularSpec(n int, seed uint64) OpSpec {
	rng := stats.NewRNG(seed)
	times := make([]float64, n)
	for i := range times {
		if rng.Bernoulli(0.3) {
			times[i] = rng.Uniform(8, 16)
		} else {
			times[i] = 0.8
		}
	}
	t := times
	s := OpSpec{Op: sched.Op{
		Name: "birr", N: n, Bytes: 64,
		Time: func(i int) float64 { return t[i] },
		Hint: func(i int) float64 { return t[i] },
	}}
	s.SampleStats(128)
	return s
}

func irregularSpec(n int, seed uint64) OpSpec {
	rng := stats.NewRNG(seed)
	d := stats.Bimodal{PA: 0.75, A: stats.Constant{V: 1}, B: stats.LogNormalDist{Mu: 2.2, Sigma: 0.9}}
	times := make([]float64, n)
	for i := range times {
		times[i] = d.Sample(rng)
	}
	s := OpSpec{Op: sched.Op{Name: "irr", N: n, Time: func(i int) float64 { return times[i] }, Bytes: 64}}
	s.SampleStats(128)
	return s
}

func TestSampleStats(t *testing.T) {
	s := uniformSpec(1000, 3.0)
	if math.Abs(s.Mu-3) > 1e-9 || s.Sigma > 1e-9 {
		t.Fatalf("mu=%v sigma=%v", s.Mu, s.Sigma)
	}
	ir := irregularSpec(5000, 1)
	if ir.Sigma <= 0 {
		t.Fatal("irregular sigma should be positive")
	}
}

func TestFinishEstimateTerms(t *testing.T) {
	cfg := machine.DefaultConfig(64)
	s := irregularSpec(4096, 2)
	s.SetupBytes = 1 << 20
	s.CommBytes = func(n, p int) int64 { return int64(n) * 8 }

	e := FinishEstimate(cfg, s, 64)
	if e.Setup <= 0 || e.Compute <= 0 || e.Lag <= 0 || e.Comm <= 0 || e.Sched <= 0 {
		t.Fatalf("all terms should be positive: %+v", e)
	}
	if e.Total() != e.Setup+e.Compute+e.Lag+e.Comm+e.Sched {
		t.Fatal("Total mismatch")
	}
	// One processor: no setup, no lag, no comm.
	e1 := FinishEstimate(cfg, s, 1)
	if e1.Setup != 0 || e1.Lag != 0 || e1.Comm != 0 {
		t.Fatalf("single-processor overheads: %+v", e1)
	}
	// Compute scales as 1/p.
	if math.Abs(e1.Compute/64-e.Compute) > 1e-9 {
		t.Fatalf("compute not 1/p: %v vs %v", e1.Compute, e.Compute)
	}
}

func TestFinishEstimateMonotonicity(t *testing.T) {
	cfg := machine.DefaultConfig(1024)
	s := irregularSpec(4096, 3)
	prev := math.Inf(1)
	// Compute term decreases with p; eventually lag/sched make more
	// processors useless, so total is not monotone. But up to modest p,
	// total should decrease.
	for _, p := range []int{1, 2, 4, 8, 16} {
		tot := FinishEstimate(cfg, s, p).Total()
		if tot >= prev {
			t.Fatalf("estimate not improving at p=%d: %v >= %v", p, tot, prev)
		}
		prev = tot
	}
}

func TestPredictChunks(t *testing.T) {
	// Zero variance: behaves like GSS; chunk count ~ p·log(N/p).
	c := PredictChunks(1024, 8, 0)
	if c < 8 || c > 200 {
		t.Fatalf("chunks = %d", c)
	}
	// Variance increases the chunk count.
	cv := PredictChunks(1024, 8, 2.0)
	if cv <= c {
		t.Fatalf("variance should add chunks: %d <= %d", cv, c)
	}
	if PredictChunks(0, 8, 1) != 0 {
		t.Fatal("no tasks, no chunks")
	}
}

func TestAllocateEqualOps(t *testing.T) {
	est := func(p int) float64 { return 1000 / float64(p) }
	p1, p2 := Allocate(est, est, 64, DefaultMaxCount, DefaultEpsilon)
	if p1+p2 != 64 {
		t.Fatalf("p1+p2 = %d", p1+p2)
	}
	if p1 != 32 || p2 != 32 {
		t.Fatalf("equal ops should split evenly: %d/%d", p1, p2)
	}
}

func TestAllocateUnequalOps(t *testing.T) {
	// A has 3x the work of B: A should get roughly 3/4 of processors.
	estA := func(p int) float64 { return 3000 / float64(p) }
	estB := func(p int) float64 { return 1000 / float64(p) }
	p1, p2 := Allocate(estA, estB, 64, DefaultMaxCount, DefaultEpsilon)
	if p1+p2 != 64 {
		t.Fatalf("p1+p2 = %d", p1+p2)
	}
	if p1 < 40 || p1 > 56 {
		t.Fatalf("A should get ~48 processors, got %d", p1)
	}
	eA, eB := estA(p1), estB(p2)
	if imbalance(eA, eB) > 0.25 {
		t.Fatalf("finishing times not equalized: %v vs %v", eA, eB)
	}
}

func TestAllocateRespectsMaxCount(t *testing.T) {
	calls := 0
	est := func(p int) float64 { calls++; return 1000 / float64(p) }
	estB := func(p int) float64 { calls++; return 50000 / float64(p) }
	Allocate(est, estB, 128, 4, 0.001)
	// 2 initial + 2 per iteration, max 4 iterations.
	if calls > 10 {
		t.Fatalf("estimator called %d times", calls)
	}
}

func TestAllocateEdgeCases(t *testing.T) {
	est := func(p int) float64 { return 1 / float64(p) }
	p1, p2 := Allocate(est, est, 1, 4, 0.05)
	if p1 != 1 || p2 != 0 {
		t.Fatalf("p=1: %d/%d", p1, p2)
	}
	p1, p2 = Allocate(est, est, 2, 4, 0.05)
	if p1 != 1 || p2 != 1 {
		t.Fatalf("p=2: %d/%d", p1, p2)
	}
	// Both sides keep at least one processor even with extreme skew.
	estHuge := func(p int) float64 { return 1e9 / float64(p) }
	estTiny := func(p int) float64 { return 1.0 }
	p1, p2 = Allocate(estHuge, estTiny, 64, 10, 0.001)
	if p1 < 1 || p2 < 1 || p1+p2 != 64 {
		t.Fatalf("extreme skew: %d/%d", p1, p2)
	}
}

func TestAllocateSpecs(t *testing.T) {
	cfg := machine.DefaultConfig(128)
	a := irregularSpec(4096, 5)
	b := uniformSpec(1024, 1)
	p1, p2 := AllocateSpecs(cfg, a, b, 128)
	if p1+p2 != 128 || p1 < 1 || p2 < 1 {
		t.Fatalf("alloc = %d/%d", p1, p2)
	}
	// The op with more total work gets more processors.
	if a.Mu*float64(a.Op.N) > b.Mu*float64(b.Op.N) && p1 <= p2 {
		t.Fatalf("allocation ignores work: %d/%d", p1, p2)
	}
}

func TestAllocateMany(t *testing.T) {
	cfg := machine.DefaultConfig(256)
	specs := []OpSpec{
		uniformSpec(4096, 2),
		uniformSpec(1024, 1),
		irregularSpec(2048, 7),
	}
	alloc := AllocateMany(cfg, specs, 256, nil)
	total := 0
	for i, a := range alloc {
		if a < 1 {
			t.Fatalf("op %d starved: %v", i, alloc)
		}
		total += a
	}
	if total != 256 {
		t.Fatalf("allocated %d processors, want 256", total)
	}
	// Largest-work op gets the most.
	if alloc[0] <= alloc[1] {
		t.Fatalf("allocation not proportional: %v", alloc)
	}
	if len(AllocateMany(cfg, specs[:1], 64, nil)) != 1 {
		t.Fatal("single op allocation")
	}
}

func TestChooseGranularity(t *testing.T) {
	cfg := machine.DefaultConfig(64)
	m := ChooseGranularity(cfg, 4096, 64)
	if m < 1 || m > 4096 {
		t.Fatalf("m = %d", m)
	}
	// Larger items → smaller batches.
	mBig := ChooseGranularity(cfg, 4096, 64*1024)
	if mBig >= m {
		t.Fatalf("large items should shrink batches: %d >= %d", mBig, m)
	}
	// The chosen granularity should be near the cost minimum.
	best := PipeBatchCost(cfg, 4096, 64, m)
	for _, other := range []int{1, 8, 64, 512, 4096} {
		c := PipeBatchCost(cfg, 4096, 64, other)
		if c < best*0.9 {
			t.Fatalf("m=%d (cost %v) badly beaten by m=%d (cost %v)", m, best, other, c)
		}
	}
	if ChooseGranularity(cfg, 1, 64) != 1 {
		t.Fatal("n=1 granularity")
	}
}

func TestExecuteConcurrentSmoothing(t *testing.T) {
	// The paper's key claim: running an irregular op concurrently with
	// a regular one lets the runtime smooth the load, beating the
	// barrier execution of the two.
	cfg := machine.DefaultConfig(128)
	irr := irregularSpec(2048, 11)
	reg := uniformSpec(2048, 2)
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }

	alloc := AllocateMany(cfg, []OpSpec{irr, reg}, 128, nil)
	conc := ExecuteConcurrent(cfg, []OpSpec{irr, reg}, alloc, factory)

	procs := make([]int, 128)
	for i := range procs {
		procs[i] = i
	}
	b1 := sched.ExecuteDistributed(cfg, irr.Op, procs, factory, obs.OpObs{})
	b2 := sched.ExecuteDistributed(cfg, reg.Op, procs, factory, obs.OpObs{})
	barrier := b1.Makespan + b2.Makespan

	if conc.Makespan >= barrier {
		t.Fatalf("concurrent (%v) should beat barrier (%v)", conc.Makespan, barrier)
	}
	// All work must be executed.
	var busy float64
	for _, b := range conc.Busy {
		busy += b
	}
	if busy < conc.SeqTime {
		t.Fatalf("lost work: busy=%v seq=%v", busy, conc.SeqTime)
	}
}

func TestExecuteConcurrentDeterministic(t *testing.T) {
	cfg := machine.DefaultConfig(32)
	specs := []OpSpec{irregularSpec(512, 13), uniformSpec(512, 1)}
	factory := func() sched.Policy { return &sched.Taper{} }
	alloc := AllocateMany(cfg, specs, 32, nil)
	a := ExecuteConcurrent(cfg, specs, alloc, factory)
	b := ExecuteConcurrent(cfg, specs, alloc, factory)
	if a.Makespan != b.Makespan || a.Steals != b.Steals {
		t.Fatal("concurrent execution not deterministic")
	}
}

func TestExecuteConcurrentSingleOp(t *testing.T) {
	cfg := machine.DefaultConfig(16)
	spec := uniformSpec(1024, 1)
	r := ExecuteConcurrent(cfg, []OpSpec{spec}, []int{16}, func() sched.Policy { return &sched.Taper{} })
	if r.Efficiency() < 0.7 {
		t.Fatalf("single-op concurrent eff = %v", r.Efficiency())
	}
}

func TestExecutePipelinedBeatsBarrier(t *testing.T) {
	cfg := machine.DefaultConfig(64)
	// A producer with a serial-ish tail fed into a consumer: pipelining
	// overlaps the two.
	prod := irregularSpec(2048, 17)
	cons := uniformSpec(2048, 1.5)
	m := ChooseGranularity(cfg, 2048, 64)
	pProd, pCons := AllocateSpecs(cfg, prod, cons, 64)
	pipe := ExecutePipelined(cfg, prod, cons, pProd, pCons, m)
	barrier := ExecuteBarrier(cfg, prod, cons, 64, func() sched.Policy { return &sched.Taper{} })
	if pipe.Makespan >= barrier.Makespan {
		t.Fatalf("pipelined (%v) should beat barrier (%v)", pipe.Makespan, barrier.Makespan)
	}
}

func TestExecutePipelinedCompletesAllWork(t *testing.T) {
	cfg := machine.DefaultConfig(8)
	prod := uniformSpec(100, 1)
	cons := uniformSpec(100, 1)
	r := ExecutePipelined(cfg, prod, cons, 4, 4, 10)
	var busy float64
	for _, b := range r.Busy {
		busy += b
	}
	if busy < r.SeqTime {
		t.Fatalf("lost work: busy=%v seq=%v", busy, r.SeqTime)
	}
	if r.Makespan < r.SeqTime/8 {
		t.Fatalf("impossible makespan %v", r.Makespan)
	}
}

func TestPipelineBatchExtremes(t *testing.T) {
	cfg := machine.DefaultConfig(16)
	prod := uniformSpec(512, 1)
	cons := uniformSpec(512, 1)
	// Batch = n degenerates toward barrier behaviour (consumer waits
	// for everything); tiny batches pay message overhead. A moderate
	// batch should beat batch = n.
	all := ExecutePipelined(cfg, prod, cons, 8, 8, 512)
	mid := ExecutePipelined(cfg, prod, cons, 8, 8, 32)
	if mid.Makespan >= all.Makespan {
		t.Fatalf("mid batch (%v) should beat full batch (%v)", mid.Makespan, all.Makespan)
	}
}

func TestFinishEstimateTracksReality(t *testing.T) {
	// Equation (1) is used to RANK allocations, so it must track the
	// simulator within a modest factor across operation shapes and
	// machine sizes.
	// Bounded irregular op with warm hints: the estimator's operating
	// regime (iterative applications with learned cost functions).
	// Unbounded heavy tails are straggler-bound in ways equation (1)
	// cannot see without per-task knowledge.
	bounded := boundedIrregularSpec(4096, 19)
	for _, tc := range []struct {
		name string
		spec OpSpec
	}{
		{"uniform", uniformSpec(4096, 2)},
		{"irregular", bounded},
	} {
		for _, p := range []int{32, 128, 512} {
			cfg := machine.DefaultConfig(p)
			est := FinishEstimate(cfg, tc.spec, p).Total()
			procs := make([]int, p)
			for i := range procs {
				procs[i] = i
			}
			actual := sched.ExecuteDistributed(cfg, tc.spec.Op, procs,
				func() sched.Policy { return &sched.Taper{UseCostFunction: true} }, obs.OpObs{}).Makespan
			ratio := est / actual
			if ratio < 0.4 || ratio > 2.5 {
				t.Errorf("%s p=%d: estimate %v vs actual %v (ratio %.2f)",
					tc.name, p, est, actual, ratio)
			}
		}
	}
}

func TestEstimateRanksAllocations(t *testing.T) {
	// The estimator's real job: given two operations, the allocation it
	// prefers should execute no worse than allocations it rejects.
	cfg := machine.DefaultConfig(256)
	a := irregularSpec(4096, 23)
	b := uniformSpec(2048, 1)
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }

	p1, p2 := AllocateSpecs(cfg, a, b, 256)
	chosen := ExecuteConcurrent(cfg, []OpSpec{a, b}, []int{p1, p2}, factory)
	// Compare against two deliberately bad splits.
	for _, bad := range [][2]int{{32, 224}, {224, 32}} {
		r := ExecuteConcurrent(cfg, []OpSpec{a, b}, []int{bad[0], bad[1]}, factory)
		if chosen.Makespan > 1.15*r.Makespan {
			t.Errorf("chosen %d/%d (%v) much worse than %v (%v)",
				p1, p2, chosen.Makespan, bad, r.Makespan)
		}
	}
}

func TestChoosePairGranularity(t *testing.T) {
	cfg := machine.DefaultConfig(64)
	prod := uniformSpec(4096, 2)
	m := ChoosePairGranularity(cfg, prod, 32, 64)
	if m < 1 || m > 4096/16 {
		t.Fatalf("m = %d, want within [1, 256]", m)
	}
	// Small operations still get at least one item per batch.
	tiny := uniformSpec(4, 1)
	if ChoosePairGranularity(cfg, tiny, 2, 64) < 1 {
		t.Fatal("degenerate granularity")
	}
}
