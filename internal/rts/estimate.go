// Package rts implements the paper's adaptive runtime support (§4):
// finishing-time estimation for parallel operations (equation 1),
// the iterative processor-allocation algorithm that equalizes
// finishing-time estimates among concurrently executing operations
// (§4.1.2), communication-granularity selection for pipelined pairs,
// and the co-scheduled execution of multiple parallel operations on
// the simulated machine.
package rts

import (
	"math"

	"orchestra/internal/machine"
	"orchestra/internal/sched"
	"orchestra/internal/split"
)

// OpSpec describes one parallel operation to the runtime: the
// executable operation plus the information the estimator needs. Mu
// and Sigma are the sampled task-time statistics the runtime gathers
// as the operation executes; SetupBytes the data that must be
// contracted/expanded when the processor set changes; CommBytes the
// Sarkar–Hennessy style estimate of data crossing processor boundaries
// as a function of the runtime parameters N and p.
type OpSpec struct {
	Op        sched.Op
	Mu, Sigma float64
	// SetupBytes is the data volume moved when (re)distributing the
	// operation's working set over a new processor subset.
	SetupBytes int64
	// CommBytes estimates the total bytes crossing processor
	// boundaries during execution given n tasks on p processors. Nil
	// means no steady-state communication.
	CommBytes func(n, p int) int64
	// Split, when non-nil, annotates the kernel's data-access
	// decomposition (internal/split): which predecessor elements task
	// i reads and which output elements it writes. The native backend
	// combines producer and consumer annotations per dataflow edge to
	// decide cache-chain scheduling; a nil annotation means the
	// conservative AccessAll behaviour (never chained).
	Split *split.Annotation
	// Pack serializes the durable results of tasks [lo, hi) of this
	// operation into an opaque blob, and Apply installs such a blob
	// into this process's memory image. The pair is how the
	// distributed backend moves data between shared-nothing worker
	// processes: after a worker executes a segment it Packs the range,
	// the coordinator relays the blob, and every other process Applies
	// it before any dependent task runs. The blob format is private to
	// the kernel; both hooks see the same [lo, hi) task range. Nil for
	// kernels without durable data (synthetic timing kernels), whose
	// results need no transport.
	Pack func(lo, hi int) []byte
	// Apply is Pack's receiving half; see Pack.
	Apply func(lo, hi int, blob []byte)
	// Expand, when non-nil, makes the operator expandable (a
	// delirium.Exp node): once its predecessors complete, the engine
	// calls Expand to materialize a sub-graph in place of the
	// operator's body, splices the sub-graph's tasks into the running
	// schedule, and runs the operator's own Op (its join task, N ≤ 1)
	// only after every sub-graph task completes. See expand.go.
	Expand ExpandFunc
}

// SampleStats fills Mu and Sigma by sampling k task times (the
// runtime's sampling phase). It samples exactly k indices spread
// evenly across the iteration space: index ⌊j·N/k⌋ for j = 0..k-1,
// which are distinct whenever k ≤ N. (A naive floor stride N/k walks
// up to ~2k-1 indices — N=100, k=3 would sample i = 0, 33, 66, 99 —
// silently blowing a small sampling budget and skewing μ/σ toward
// whatever the tail of the iteration space holds.)
func (s *OpSpec) SampleStats(k int) {
	if k <= 0 || s.Op.N == 0 {
		return
	}
	if k > s.Op.N {
		k = s.Op.N
	}
	var mean, m2 float64
	n := 0
	for j := 0; j < k; j++ {
		t := s.Op.Time(j * s.Op.N / k)
		n++
		d := t - mean
		mean += d / float64(n)
		m2 += d * (t - mean)
	}
	s.Mu = mean
	// A single sample has no spread: clamp Sigma to 0 rather than
	// dividing by n-1 (and overwrite any stale value from an earlier
	// sampling pass). Rounding can also drive m2 fractionally negative,
	// which would surface as Sqrt(-ε) = NaN and poison every
	// finishing-time comparison downstream.
	if n > 1 && m2 > 0 {
		s.Sigma = math.Sqrt(m2 / float64(n-1))
	} else {
		s.Sigma = 0
	}
}

// sanitize replaces a non-finite or negative statistic with a safe
// fallback so NaN/Inf never propagates into estimates or allocation
// comparisons (NaN compares false with everything, which silently
// derails the iterative allocator).
func sanitize(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fallback
	}
	return v
}

// Estimate is the decomposition of a finishing-time estimate into the
// five terms of the paper's equation (1).
type Estimate struct {
	Setup   float64
	Compute float64
	Lag     float64
	Comm    float64
	Sched   float64
}

// Total sums the terms.
func (e Estimate) Total() float64 {
	return e.Setup + e.Compute + e.Lag + e.Comm + e.Sched
}

// EffectiveOmega resolves a TAPER confidence-width override the same
// way the executed policy does (sched.Taper.NextChunk): a positive
// omega is used as-is, anything else falls back to the paper's
// √(2·ln(p+1)). Every estimator that predicts scheduling behaviour
// must resolve ω through this function — predicting with the default
// while the executor honours an override would model a different
// scheduler than the one that runs.
func EffectiveOmega(p int, omega float64) float64 {
	if omega > 0 {
		return omega
	}
	if p < 1 {
		p = 1
	}
	return math.Sqrt(2 * math.Log(float64(p)+1))
}

// FinishEstimate implements equation (1) with the default TAPER
// confidence width; see FinishEstimateOmega.
func FinishEstimate(cfg machine.Config, spec OpSpec, p int) Estimate {
	return FinishEstimateOmega(cfg, spec, p, 0)
}

// FinishEstimateOmega implements equation (1):
//
//	finish = setup + compute + lag + comm + sched
//
// setup: the time to contract or expand the operation's data onto p
// processors. compute: N·μ/p, the expected mean share. lag: the
// expected maximum over the mean — for p partial sums of N/p tasks
// with variance σ², approximately σ·√(N/p)·√(2·ln p). comm: the
// runtime communication estimate. sched: the predicted number of
// scheduling events per processor times the per-event overhead, with
// the chunk count predicted from the TAPER recurrence under the
// effective confidence width omega (0 = the policy default).
func FinishEstimateOmega(cfg machine.Config, spec OpSpec, p int, omega float64) Estimate {
	if p < 1 {
		p = 1
	}
	spec.Mu = sanitize(spec.Mu, 0)
	spec.Sigma = sanitize(spec.Sigma, 0)
	n := spec.Op.N
	var e Estimate

	if spec.SetupBytes > 0 && p > 1 {
		e.Setup = float64(spec.SetupBytes)*cfg.ByteCost/float64(p)*math.Ceil(math.Log2(float64(p))) +
			math.Ceil(math.Log2(float64(p)))*(cfg.MsgOverhead+cfg.HopLatency)
	}

	e.Compute = float64(n) * spec.Mu / float64(p)

	if p > 1 && n > 0 {
		// With adaptive (TAPER) scheduling the residual imbalance is
		// the straggler overhang of individual tasks, not the
		// σ·√(N/p)-scaled imbalance of a static decomposition. The
		// overhang matters in proportion to the task granularity: with
		// many tasks per processor re-assignment hides it almost
		// entirely; as N/p approaches one task it converges to the
		// maximum single-task deviation σ·√(2·ln p).
		gran := float64(p) / float64(n)
		if gran > 1 {
			gran = 1
		}
		e.Lag = spec.Sigma * math.Sqrt(2*math.Log(float64(p))) * gran
	}

	if spec.CommBytes != nil && p > 1 {
		e.Comm = float64(spec.CommBytes(n, p)) / float64(p) * cfg.ByteCost
	}

	e.Sched = float64(PredictChunksOmega(n, p, cv(spec), omega)) / float64(p) * cfg.SchedOverhead
	return e
}

func cv(spec OpSpec) float64 {
	if spec.Mu <= 0 || math.IsNaN(spec.Mu) || math.IsInf(spec.Mu, 0) {
		return 0
	}
	return sanitize(spec.Sigma/spec.Mu, 0)
}

// PredictChunks predicts the TAPER chunk count under the default
// confidence width; see PredictChunksOmega.
func PredictChunks(n, p int, cv float64) int {
	return PredictChunksOmega(n, p, cv, 0)
}

// PredictChunksOmega predicts how many chunks TAPER will schedule for
// n tasks on p processors given the coefficient of variation of task
// times, by iterating the chunk-size recurrence (§4.1.2: "we need to
// predict, at runtime, the number of chunks that will be scheduled").
// omega overrides the confidence width exactly as RunOpts.Omega
// overrides the executed policy's (0 = the policy default), so the
// prediction tracks the scheduler that actually runs during -omega
// sweeps.
func PredictChunksOmega(n, p int, cv, omega float64) int {
	if n <= 0 || p < 1 {
		return 0
	}
	cv = sanitize(cv, 0)
	omega = EffectiveOmega(p, omega)
	chunks := 0
	r := n
	for r > 0 {
		share := float64(r) / float64(p)
		disc := omega*omega*cv*cv + 4*share
		sqrtK := (-omega*cv + math.Sqrt(disc)) / 2
		k := int(sqrtK * sqrtK)
		if k < 1 {
			k = 1
		}
		// One "round": p processors each take a chunk of roughly k.
		taken := k * p
		if taken > r {
			taken = r
		}
		r -= taken
		chunks += (taken + k - 1) / k
		if chunks > 10*n { // defensive; cannot happen with k >= 1
			break
		}
	}
	return chunks
}
