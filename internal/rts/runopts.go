package rts

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"orchestra/internal/fault"
	"orchestra/internal/obs"
)

// ErrCanceled marks a run abandoned because its RunOpts.Ctx was
// canceled or its deadline expired before every task completed. Both
// backends wrap it (together with the context's own error) into the
// error they return, so callers distinguish cancellation from
// execution failures with errors.Is(err, rts.ErrCanceled). A run whose
// context fires after the last task completes still reports success.
var ErrCanceled = errors.New("run canceled")

// CancelError builds the distinguishable error a backend returns for a
// canceled run: it wraps both ErrCanceled and the context's error, so
// errors.Is matches either (e.g. context.DeadlineExceeded for expired
// deadlines).
func CancelError(backend string, ctx context.Context) error {
	var cause error = ErrCanceled
	if ctx != nil && ctx.Err() != nil {
		cause = errors.Join(ErrCanceled, ctx.Err())
	}
	return fmt.Errorf("%s: %w", backend, cause)
}

// IsCanceled reports whether a backend error means the run was
// abandoned on a canceled context rather than failing.
func IsCanceled(err error) bool { return errors.Is(err, ErrCanceled) }

// RunOpts configures one execution of a Delirium graph. It is the
// single way to configure a run on any backend: the zero value of
// every field is a sensible default, so callers set only what they
// care about — either directly as a struct literal or through the
// functional options accepted by NewRunOpts.
type RunOpts struct {
	// Processors is the number of simulated processors or worker
	// goroutines. Zero lets the backend choose its default: the
	// simulator uses its machine configuration's processor count, the
	// native backend uses GOMAXPROCS.
	Processors int
	// Mode selects the execution strategy. The zero value is
	// ModeStatic.
	Mode Mode
	// Omega, when positive, overrides TAPER's confidence-width
	// parameter ω for every operator (the paper's default is
	// ω ≈ √(2·ln p)). Parity and fuzz harnesses sweep it to vary
	// scheduling decisions without touching the policy package.
	Omega float64
	// Sink, when non-nil, enables event tracing: the backend records
	// per-chunk spans, steals, TAPER decisions, allocation iterations
	// and gate advances into per-worker ring buffers and delivers the
	// completed obs.Trace to the sink. A nil Sink costs one branch per
	// would-be event.
	Sink obs.Sink
	// Pin locks each native worker goroutine to an OS thread. The
	// simulator ignores it.
	Pin bool
	// Labels annotates native worker goroutines with runtime/pprof
	// labels (worker id, current operator) so profiles attribute
	// samples per operator. Labelling costs an allocation per operator
	// switch, so it is off unless a profile is being taken. The
	// simulator ignores it.
	Labels bool
	// Fault, when non-nil, injects a deterministic fault plan into the
	// run: worker crashes, stalls and slowdowns on either backend, plus
	// message delay/loss on the simulator. The backend validates the
	// plan against its resolved worker count (at least one worker must
	// survive). A nil Fault costs one branch per chunk boundary.
	Fault *fault.Plan
	// Ctx, when non-nil, bounds the run: cancellation (or an expired
	// deadline) makes the backend abandon unexecuted work, release its
	// workers, and return an error wrapping ErrCanceled. Cancellation
	// is cooperative at chunk boundaries — a task already executing
	// finishes first — so partial side effects never include a
	// half-executed task. A nil Ctx means the run cannot be canceled.
	Ctx context.Context
	// Chain selects the cache-chain policy for pipelined edges in
	// ModeSplit on the native backend. The zero value (ChainAuto)
	// chains edges whose kernels carry compatible split annotations
	// (or that the compiler marked Chain); ChainOff disables chaining
	// so every pipelined edge keeps the prefix-gate path — the
	// before/after knob the pipeline benchmarks flip. The simulator
	// ignores it.
	Chain ChainPolicy
}

// ChainPolicy selects how the native backend treats chain-eligible
// edges in ModeSplit.
type ChainPolicy int

const (
	// ChainAuto (the default) cache-chains annotation-compatible
	// producer/consumer edges.
	ChainAuto ChainPolicy = iota
	// ChainOff forces every pipelined edge through the prefix gate.
	ChainOff
)

// RunOption mutates a RunOpts; see NewRunOpts.
type RunOption func(*RunOpts)

// NewRunOpts builds a RunOpts from functional options:
//
//	rts.NewRunOpts(rts.WithProcessors(512), rts.WithMode(rts.ModeSplit))
func NewRunOpts(opts ...RunOption) RunOpts {
	var o RunOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithProcessors sets the processor/worker count.
func WithProcessors(p int) RunOption { return func(o *RunOpts) { o.Processors = p } }

// WithMode sets the execution mode.
func WithMode(m Mode) RunOption { return func(o *RunOpts) { o.Mode = m } }

// WithOmega overrides TAPER's confidence width ω.
func WithOmega(omega float64) RunOption { return func(o *RunOpts) { o.Omega = omega } }

// WithSink enables event tracing into the given sink.
func WithSink(s obs.Sink) RunOption { return func(o *RunOpts) { o.Sink = s } }

// WithPinnedWorkers locks native workers to OS threads.
func WithPinnedWorkers() RunOption { return func(o *RunOpts) { o.Pin = true } }

// WithProfileLabels enables pprof worker/operator labels on native
// workers.
func WithProfileLabels() RunOption { return func(o *RunOpts) { o.Labels = true } }

// WithFaultPlan injects a fault plan into the run. Plan validation
// against the worker count happens in the backend, which resolves the
// processor default first.
func WithFaultPlan(p *fault.Plan) RunOption { return func(o *RunOpts) { o.Fault = p } }

// WithContext bounds the run by a context: cancellation or an expired
// deadline abandons the run with an error wrapping ErrCanceled.
func WithContext(ctx context.Context) RunOption { return func(o *RunOpts) { o.Ctx = ctx } }

// WithChain sets the cache-chain policy for pipelined edges.
func WithChain(c ChainPolicy) RunOption { return func(o *RunOpts) { o.Chain = c } }

// Supported declares which optional RunOpts capabilities a backend
// implements, for CheckSupported. The split is by what the option
// asks for: Pin and Labels request an effect (OS-thread pinning,
// pprof labels) that a backend either produces or cannot; Chain and
// Fault are constraints a backend may satisfy trivially (a backend
// that never chains satisfies ChainOff by construction, which is why
// the simulator declares Chain support without a chaining
// implementation).
type Supported struct {
	// Pin: the backend can lock workers to OS threads.
	Pin bool
	// Labels: the backend can attach pprof worker/operator labels.
	Labels bool
	// Chain: the backend honours the cache-chain policy (possibly
	// trivially, by never chaining).
	Chain bool
	// Fault: the backend can execute fault plans.
	Fault bool
	// Expand: the backend can execute runtime expansions (delirium.Exp
	// nodes). Checked against the graph, not the RunOpts, via
	// CheckGraphSupported.
	Expand bool
}

// OptionError reports options a backend does not understand or cannot
// honour: RunOpts fields outside the backend's Supported set, or
// unknown keys in a BackendConfig.Options map. It replaces the old
// behaviour of silently ignoring such options — a run configured with
// an inapplicable option now fails loudly at Run (or OpenBackend)
// time, naming every offending field.
type OptionError struct {
	// Backend is the rejecting backend's name.
	Backend string
	// Fields lists the offending option names, sorted.
	Fields []string
	// Known, when non-nil, lists the option keys the backend does
	// accept (set for BackendConfig.Options rejections).
	Known []string
}

// Error implements error.
func (e *OptionError) Error() string {
	msg := fmt.Sprintf("rts: backend %q does not support option(s) %s",
		e.Backend, strings.Join(e.Fields, ", "))
	if len(e.Known) > 0 {
		msg += fmt.Sprintf(" (known: %s)", strings.Join(e.Known, ", "))
	} else if e.Known != nil {
		msg += " (backend takes no options)"
	}
	return msg
}

// CheckSupported verifies that every non-default optional field of o
// falls inside the backend's declared capability set, returning a
// structured *OptionError naming the offending fields otherwise.
// Backends call it at the top of Run, after Validate.
func (o RunOpts) CheckSupported(backend string, sup Supported) error {
	var bad []string
	if o.Pin && !sup.Pin {
		bad = append(bad, "Pin")
	}
	if o.Labels && !sup.Labels {
		bad = append(bad, "Labels")
	}
	if o.Chain != ChainAuto && !sup.Chain {
		bad = append(bad, "Chain")
	}
	if o.Fault != nil && !sup.Fault {
		bad = append(bad, "Fault")
	}
	if len(bad) == 0 {
		return nil
	}
	return &OptionError{Backend: backend, Fields: bad}
}

// canceled reports whether the run's context has fired.
func (o RunOpts) canceled() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Validate checks the options for consistency. Backends call it at
// the top of Run; callers constructing RunOpts by hand may call it
// early to fail fast.
func (o RunOpts) Validate() error {
	switch o.Mode {
	case ModeStatic, ModeTaper, ModeSplit:
	default:
		return fmt.Errorf("rts: unknown mode %d", int(o.Mode))
	}
	if o.Processors < 0 {
		return fmt.Errorf("rts: negative processor count %d", o.Processors)
	}
	if o.Omega < 0 {
		return fmt.Errorf("rts: negative omega %g", o.Omega)
	}
	switch o.Chain {
	case ChainAuto, ChainOff:
	default:
		return fmt.Errorf("rts: unknown chain policy %d", int(o.Chain))
	}
	return nil
}

// processors resolves the processor count against a backend default.
func (o RunOpts) processors(def int) int {
	if o.Processors > 0 {
		return o.Processors
	}
	return def
}
