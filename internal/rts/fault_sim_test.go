package rts

import (
	"strings"
	"testing"

	"orchestra/internal/fault"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
)

// countingSpec returns an OpSpec whose Time closure counts per-task
// executions. On real bindings the kernel computes values as a Time
// side effect and re-execution is idempotent (the engines' settling
// pass already runs each task once), so the survival witness is: every
// task was dispatched by the scheduled run, i.e. executed at least
// twice here — once by SeqTime accounting, once or more scheduled.
func countingSpec(n int, execs []int) OpSpec {
	s := OpSpec{Op: sched.Op{
		Name: "cnt", N: n, Bytes: 64,
		Time: func(i int) float64 {
			execs[i]++
			return 1 + float64(i%7)
		},
	}}
	s.Mu, s.Sigma = 4, 2
	return s
}

func checkAllExecuted(t *testing.T, label string, execs []int) {
	t.Helper()
	for i, c := range execs {
		if c < 2 {
			t.Fatalf("%s: task %d executed %d times, want settling + scheduled", label, i, c)
		}
	}
}

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSimFaultSurvival drives crash/stall/slow/message plans through
// both simulator engines (the per-op TAPER loop and the barrier-free
// DAG) and checks the run completes with every task executed exactly
// once — the property that makes faulted results bitwise-identical to
// fault-free ones.
func TestSimFaultSurvival(t *testing.T) {
	plans := []string{
		"crash:0@2",
		"crash:0@0,crash:2@5",
		"stall:1@1:5",
		"slow:2@0:8",
		"crash:0@3,stall:1@2:2,slow:2@1:4",
		"delay:0.5,loss:0.2,seed:9",
		"crash:3@0,delay:0.25",
	}
	cfg := machine.DefaultConfig(4)
	for _, mode := range []Mode{ModeTaper, ModeSplit} {
		for _, spec := range plans {
			g := chainGraph(t, "a", "b")
			const n = 400
			execsA := make([]int, n)
			execsB := make([]int, n)
			bind := func(name string) OpSpec {
				if name == "a" {
					return countingSpec(n, execsA)
				}
				return countingSpec(n, execsB)
			}
			r, err := RunGraph(cfg, g, bind, RunOpts{
				Processors: 4, Mode: mode, Fault: mustPlan(t, spec),
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, spec, err)
			}
			if r.Makespan <= 0 {
				t.Fatalf("%v/%s: empty result", mode, spec)
			}
			checkAllExecuted(t, mode.String()+"/"+spec+"/a", execsA)
			checkAllExecuted(t, mode.String()+"/"+spec+"/b", execsB)
		}
	}
}

// TestSimFaultEvents checks that a crashed worker shows up in the trace
// as fault, retry and realloc events with fresh allocation rows.
func TestSimFaultEvents(t *testing.T) {
	g := chainGraph(t, "a", "b")
	const n = 600
	bind := func(string) OpSpec { return boundedIrregularSpec(n, 11) }
	var col obs.Collector
	_, err := RunGraph(machine.DefaultConfig(4), g, bind, RunOpts{
		Processors: 4, Mode: ModeSplit, Sink: &col,
		Fault: mustPlan(t, "crash:0@1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := col.Trace
	if tr == nil {
		t.Fatal("no trace collected")
	}
	var faults, retries, reallocs int
	for _, e := range tr.Events {
		switch e.Kind {
		case obs.KindFault:
			faults++
			if e.Lo != 0 || e.Arg != int32(fault.Crash) {
				t.Fatalf("fault event names target %d action %d", e.Lo, e.Arg)
			}
		case obs.KindRetry:
			retries++
		case obs.KindRealloc:
			reallocs++
		}
	}
	if faults != 1 || reallocs != 1 {
		t.Fatalf("faults=%d reallocs=%d, want 1 and 1", faults, reallocs)
	}
	if retries == 0 {
		t.Fatal("no retry events: the dead worker's queue was never recovered")
	}
	// Reallocation-on-loss re-emits estimate rows next to the initial
	// allocation's.
	if len(tr.Allocs) == 0 {
		t.Fatal("no allocation rows")
	}
}

// TestSimFaultRejections: static execution has no scheduling events to
// survive through, and a plan must leave at least one worker standing.
func TestSimFaultRejections(t *testing.T) {
	g := chainGraph(t, "a")
	bind := func(string) OpSpec { return uniformSpec(64, 1) }
	cfg := machine.DefaultConfig(4)
	_, err := RunGraph(cfg, g, bind, RunOpts{
		Processors: 4, Mode: ModeStatic, Fault: mustPlan(t, "crash:0@0"),
	})
	if err == nil || !strings.Contains(err.Error(), "static") {
		t.Fatalf("static + crash accepted: %v", err)
	}
	// Message-only plans are fine under static (they only perturb the
	// cost model).
	if _, err := RunGraph(cfg, g, bind, RunOpts{
		Processors: 4, Mode: ModeStatic, Fault: mustPlan(t, "delay:0.5"),
	}); err != nil {
		t.Fatalf("static + delay rejected: %v", err)
	}
	// No survivor.
	_, err = RunGraph(cfg, g, bind, RunOpts{
		Processors: 2, Mode: ModeTaper,
		Fault: mustPlan(t, "crash:0@0,crash:1@0"),
	})
	if err == nil {
		t.Fatal("plan crashing every worker accepted")
	}
}

// TestSimMsgFaultsSlowTheRun: delay/loss make communication strictly
// more expensive, so a steal-heavy run's makespan must not improve.
func TestSimMsgFaultsSlowTheRun(t *testing.T) {
	g := chainGraph(t, "a", "b")
	bind := func(string) OpSpec { return boundedIrregularSpec(800, 5) }
	cfg := machine.DefaultConfig(8)
	base, err := RunGraph(cfg, g, bind, RunOpts{Processors: 8, Mode: ModeTaper})
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := RunGraph(cfg, g, bind, RunOpts{
		Processors: 8, Mode: ModeTaper, Fault: mustPlan(t, "delay:4,loss:0.3,seed:2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Makespan < base.Makespan {
		t.Fatalf("message faults sped the run up: %v < %v", delayed.Makespan, base.Makespan)
	}
}
