package rts

import (
	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/trace"
)

// Backend executes compiled Delirium graphs. Two implementations
// exist: the discrete-event simulator of the paper's Ncube-2 testbed
// (SimBackend, in this package) and the native goroutine runtime that
// runs graphs on real hardware (internal/native). Both consume the
// same compiled graph and the same Binder: a backend treats
// OpSpec.Op.Time as the executable body of task i — the simulator
// charges its return value to the simulated clock, while the native
// backend runs it for real and measures wall-clock time instead.
type Backend interface {
	// Name identifies the backend ("sim" or "native").
	Name() string
	// Execute runs the graph on p processors (simulated processors or
	// worker goroutines) under the given mode.
	Execute(g *delirium.Graph, bind Binder, p int, mode Mode) (trace.Result, error)
}

// SimBackend runs graphs on the simulated distributed-memory machine.
type SimBackend struct {
	Cfg machine.Config
}

// NewSimBackend wraps a machine configuration as a Backend.
func NewSimBackend(cfg machine.Config) *SimBackend { return &SimBackend{Cfg: cfg} }

// Name implements Backend.
func (*SimBackend) Name() string { return "sim" }

// Execute implements Backend via RunGraph.
func (s *SimBackend) Execute(g *delirium.Graph, bind Binder, p int, mode Mode) (trace.Result, error) {
	return RunGraph(s.Cfg, g, bind, p, mode)
}
