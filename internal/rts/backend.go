package rts

import (
	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/trace"
)

// Backend executes compiled Delirium graphs. Two implementations
// exist: the discrete-event simulator of the paper's Ncube-2 testbed
// (SimBackend, in this package) and the native goroutine runtime that
// runs graphs on real hardware (internal/native). Both consume the
// same compiled graph and the same Binder: a backend treats
// OpSpec.Op.Time as the executable body of task i — the simulator
// charges its return value to the simulated clock, while the native
// backend runs it for real and measures wall-clock time instead.
//
// Run is the only execution entry point: every per-run knob
// (processor count, mode, TAPER ω, trace sink, worker pinning) lives
// in RunOpts, so backends are stateless values and a run's
// configuration is visible at the call site. (Earlier revisions used
// a positional Execute(g, bind, p, mode) plus struct fields on the
// backends for the remaining knobs; DESIGN.md's compatibility note
// records the migration.)
type Backend interface {
	// Name identifies the backend ("sim" or "native").
	Name() string
	// Run executes the graph under the given options. Implementations
	// validate opts and apply backend defaults for zero fields.
	Run(g *delirium.Graph, bind Binder, opts RunOpts) (trace.Result, error)
}

// SimBackend runs graphs on the simulated distributed-memory machine.
type SimBackend struct {
	Cfg machine.Config
}

// NewSimBackend wraps a machine configuration as a Backend.
func NewSimBackend(cfg machine.Config) *SimBackend { return &SimBackend{Cfg: cfg} }

// Name implements Backend.
func (*SimBackend) Name() string { return "sim" }

// Run implements Backend via RunGraph. A zero opts.Processors
// defaults to the machine configuration's processor count.
func (s *SimBackend) Run(g *delirium.Graph, bind Binder, opts RunOpts) (trace.Result, error) {
	return RunGraph(s.Cfg, g, bind, opts)
}
