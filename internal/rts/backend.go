package rts

import (
	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/trace"
)

// Backend executes compiled Delirium graphs. Three implementations
// exist: the discrete-event simulator of the paper's Ncube-2 testbed
// (SimBackend, in this package), the native goroutine runtime that
// runs graphs on real shared-memory hardware (internal/native), and
// the distributed shared-nothing backend that forks worker processes
// communicating over Unix sockets (internal/dist). All consume the
// same compiled graph and the same Bound kernels: a backend treats
// OpSpec.Op.Time as the executable body of task i — the simulator
// charges its return value to the simulated clock, while the measured
// backends run it for real and record wall-clock time instead.
//
// Run is the only execution entry point: every per-run knob
// (processor count, mode, TAPER ω, trace sink, worker pinning) lives
// in RunOpts, so backends are stateless values and a run's
// configuration is visible at the call site. The kernels arrive as a
// *Bound — a Binding resolved through the kernel registry — rather
// than a raw Binder closure, because the dist backend must ship the
// binding's name-level form to its worker processes; shared-memory
// backends simply call b.Spec. Backends are constructed by name
// through OpenBackend (see backendreg.go); each implementation
// registers a factory from an init function.
type Backend interface {
	// Name identifies the backend ("sim", "native", "dist").
	Name() string
	// Run executes the graph with the bound kernels under the given
	// options. Implementations validate opts (including
	// CheckSupported) and apply backend defaults for zero fields.
	Run(g *delirium.Graph, b *Bound, opts RunOpts) (trace.Result, error)
}

// SimBackend runs graphs on the simulated distributed-memory machine.
type SimBackend struct {
	Cfg machine.Config
}

// NewSimBackend wraps a machine configuration as a Backend.
func NewSimBackend(cfg machine.Config) *SimBackend { return &SimBackend{Cfg: cfg} }

// Name implements Backend.
func (*SimBackend) Name() string { return "sim" }

// simSupported declares the optional RunOpts capabilities of the
// simulator: fault plans (including message faults, which only exist
// here) and the chain policy (trivially satisfied — the simulator
// never chains, so ChainOff asks for what it already does). Pin and
// Labels request effects on real OS threads the simulator does not
// have.
var simSupported = Supported{Fault: true, Chain: true, Expand: true}

// Run implements Backend via RunGraph. A zero opts.Processors
// defaults to the machine configuration's processor count.
func (s *SimBackend) Run(g *delirium.Graph, b *Bound, opts RunOpts) (trace.Result, error) {
	if err := opts.CheckSupported("sim", simSupported); err != nil {
		return trace.Result{}, err
	}
	return RunGraph(s.Cfg, g, b.Binder(), opts)
}
