package rts

import (
	"fmt"

	"orchestra/internal/machine"
	"orchestra/internal/obs"
)

// DefaultMaxCount bounds the allocation iterations; the paper: "in
// practice, using a max_count of four has been sufficient."
const DefaultMaxCount = 4

// DefaultEpsilon is the paper's 5% imbalance tolerance.
const DefaultEpsilon = 0.05

// Allocate implements the paper's iterative processor-allocation
// algorithm (§4.1.2) for two concurrently executing parallel
// operations A and B on p processors:
//
//	p1 = p/2, p2 = p - p1
//	while count < max_count and |eA - eB| > epsilon:
//	    if eA > eB:  p1 = p1 + p2/2, p2 = p - p1
//	    else:        p2 = p2 + p1/2, p1 = p - p2
//
// estA and estB return finishing-time estimates given a processor
// count. The tolerance is relative to the larger estimate. Both sides
// always keep at least one processor.
func Allocate(estA, estB func(p int) float64, p, maxCount int, epsilon float64) (p1, p2 int) {
	if p < 2 {
		return p, 0
	}
	if maxCount <= 0 {
		maxCount = DefaultMaxCount
	}
	if epsilon <= 0 {
		epsilon = DefaultEpsilon
	}
	p1 = p / 2
	p2 = p - p1
	eA, eB := estA(p1), estB(p2)
	best1, best2 := p1, p2
	bestMax := maxF(eA, eB)
	for count := 0; count < maxCount && imbalance(eA, eB) > epsilon; count++ {
		if eA > eB {
			p1 = p1 + p2/2
			if p1 > p-1 {
				p1 = p - 1
			}
			p2 = p - p1
		} else {
			p2 = p2 + p1/2
			if p2 > p-1 {
				p2 = p - 1
			}
			p1 = p - p2
		}
		eA, eB = estA(p1), estB(p2)
		if m := maxF(eA, eB); m < bestMax {
			bestMax = m
			best1, best2 = p1, p2
		}
	}
	// The iteration is a coarse bisection and can overshoot on sharply
	// nonlinear estimates; the allocation used is the best one visited
	// (the algorithm "approximates the ideal processor allocation").
	return best1, best2
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func imbalance(a, b float64) float64 {
	max := a
	if b > max {
		max = b
	}
	if max <= 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / max
}

// AllocateSpecs allocates p processors between two operation specs
// using FinishEstimate as the estimator.
func AllocateSpecs(cfg machine.Config, a, b OpSpec, p int) (p1, p2 int) {
	return Allocate(
		func(q int) float64 { return FinishEstimate(cfg, a, q).Total() },
		func(q int) float64 { return FinishEstimate(cfg, b, q).Total() },
		p, DefaultMaxCount, DefaultEpsilon)
}

// AllocateMany divides processors among concurrent operations under
// the default TAPER confidence width; see AllocateManyOmega.
func AllocateMany(cfg machine.Config, specs []OpSpec, p int, rec *obs.Recorder, names ...string) []int {
	return AllocateManyOmega(cfg, specs, p, 0, rec, names...)
}

// AllocateManyOmega divides p processors among k > 0 concurrent
// operations: an initial share proportional to estimated total work,
// refined by pairwise application of the iterative algorithm between
// the currently slowest and fastest operations. omega is the run's
// TAPER confidence-width override (0 = default), threaded into every
// finishing-time estimate so the allocation models the scheduler the
// run will actually use.
//
// A non-nil rec receives one obs.AllocEstimate row per operation per
// iteration — the five finishing-time terms the decision was based on
// — with the final allocation re-emitted as Chosen rows. names, when
// supplied, label the rows; otherwise operations appear as op0, op1, …
func AllocateManyOmega(cfg machine.Config, specs []OpSpec, p int, omega float64, rec *obs.Recorder, names ...string) []int {
	k := len(specs)
	name := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("op%d", i)
	}
	if k == 0 {
		return nil
	}
	if k == 1 {
		if rec != nil {
			e := FinishEstimateOmega(cfg, specs[0], p, omega)
			rec.Alloc(obs.AllocEstimate{Op: name(0), Procs: p, Setup: e.Setup,
				Compute: e.Compute, Lag: e.Lag, Comm: e.Comm, Sched: e.Sched, Chosen: true})
		}
		return []int{p}
	}
	// Initial proportional shares.
	total := 0.0
	work := make([]float64, k)
	for i, s := range specs {
		work[i] = float64(s.Op.N) * s.Mu
		total += work[i]
	}
	alloc := make([]int, k)
	assigned := 0
	for i := range specs {
		share := 1
		if total > 0 {
			share = int(work[i] / total * float64(p))
		}
		if share < 1 {
			share = 1
		}
		alloc[i] = share
		assigned += share
	}
	// Fix rounding drift on the largest share.
	largest := 0
	for i := range alloc {
		if alloc[i] > alloc[largest] {
			largest = i
		}
	}
	alloc[largest] += p - assigned
	if alloc[largest] < 1 {
		alloc[largest] = 1
	}

	emitRound := 0
	emit := func(chosen bool) {
		if rec == nil {
			return
		}
		for i := range specs {
			e := FinishEstimateOmega(cfg, specs[i], alloc[i], omega)
			rec.Alloc(obs.AllocEstimate{Op: name(i), Round: emitRound, Procs: alloc[i],
				Setup: e.Setup, Compute: e.Compute, Lag: e.Lag, Comm: e.Comm,
				Sched: e.Sched, Chosen: chosen})
		}
		emitRound++
	}
	emit(false) // initial proportional shares

	// Pairwise refinement between extremes.
	for round := 0; round < DefaultMaxCount; round++ {
		est := make([]float64, k)
		for i := range specs {
			est[i] = FinishEstimateOmega(cfg, specs[i], alloc[i], omega).Total()
		}
		slow, fast := 0, 0
		for i := 1; i < k; i++ {
			if est[i] > est[slow] {
				slow = i
			}
			if est[i] < est[fast] {
				fast = i
			}
		}
		if slow == fast || imbalance(est[slow], est[fast]) <= DefaultEpsilon {
			break
		}
		pool := alloc[slow] + alloc[fast]
		p1, p2 := Allocate(
			func(q int) float64 { return FinishEstimateOmega(cfg, specs[slow], q, omega).Total() },
			func(q int) float64 { return FinishEstimateOmega(cfg, specs[fast], q, omega).Total() },
			pool, DefaultMaxCount, DefaultEpsilon)
		alloc[slow], alloc[fast] = p1, p2
		emit(false)
	}
	emit(true)
	return alloc
}

// ReallocateOnLoss re-runs the allocation over the surviving processor
// set under the default confidence width; see ReallocateOnLossOmega.
func ReallocateOnLoss(cfg machine.Config, specs []OpSpec, live int, rec *obs.Recorder, names ...string) []int {
	return ReallocateOnLossOmega(cfg, specs, live, 0, rec, names...)
}

// ReallocateOnLossOmega re-runs the allocation algorithm over the
// surviving processor set after a worker loss, so finishing-time
// estimates track the machine that is actually left instead of
// silently lying (§5's re-estimation under changing conditions,
// applied to failures). The specs should carry the statistics measured
// so far; the fresh AllocEstimate rows land next to a KindRealloc
// event emitted by the caller.
func ReallocateOnLossOmega(cfg machine.Config, specs []OpSpec, live int, omega float64, rec *obs.Recorder, names ...string) []int {
	if live < 1 {
		live = 1
	}
	return AllocateManyOmega(cfg, specs, live, omega, rec, names...)
}
