package rts

import (
	"fmt"

	"orchestra/internal/delirium"
)

// This file defines the nested-dataflow expansion API (ROADMAP item 3;
// Dinh & Simhadri's nested dataflow model). A delirium.Exp node does
// not carry a static body: when its predecessors complete, the engine
// calls the bound OpSpec's Expand hook, which returns a sub-graph plus
// a binder for the sub-graph's operators. The engine splices the
// sub-graph into the running schedule — on the native backend the
// sub-tasks feed the same Chase-Lev deques every other task uses, so
// work-stealing crosses nesting levels — and holds the Exp operator's
// own join task until every sub-graph task (including recursively
// expanded ones) has completed. Completion of the join task then
// releases the parent's successors exactly like any operator
// completion, which is what makes fork-join the degenerate case: a
// single expansion level with independent sub-operators.

// MaxExpandDepth bounds the recursion depth of runtime expansions: an
// expansion requested at depth ≥ MaxExpandDepth fails the run instead
// of diverging. Depth 0 is a top-level Exp node; each nested Exp node
// inside a materialized sub-graph adds one.
const MaxExpandDepth = 16

// Expansion is the sub-graph an expandable operator materializes at
// execution time.
type Expansion struct {
	// Graph is the sub-graph to splice in. It must validate as a
	// standalone DAG; its node names must not collide with any
	// operator already scheduled (the engines check this — kernels
	// conventionally namespace sub-operators by the parent's name or
	// by tree path).
	Graph *delirium.Graph
	// Bind resolves the sub-graph's operators, exactly like the
	// top-level binder. Sub-operators may themselves be expandable
	// (OpSpec.Expand non-nil on a Kind == Exp node), recursing up to
	// MaxExpandDepth.
	Bind Binder
}

// ExpandFunc produces an operator's expansion. depth is the nesting
// depth of the operator being expanded (0 for a top-level node).
// Returning a nil Expansion with a nil error means "no expansion":
// the operator degenerates to just its join task, which is how a
// recursive rule terminates at its base case. The hook runs after
// every predecessor of the operator has completed, so it may inspect
// data those predecessors produced — this is what lets the vortex
// workload decide spatial refinement at runtime.
type ExpandFunc func(depth int) (*Expansion, error)

// CheckGraphSupported verifies the graph's structural demands against
// a backend's capability set: a graph containing Exp nodes requires
// runtime-expansion support. Backends that cannot expand (dist) call
// this beside CheckSupported and refuse with the same structured
// *OptionError shape rather than misexecuting the graph as if the Exp
// nodes were ordinary operators.
func CheckGraphSupported(backend string, g *delirium.Graph, sup Supported) error {
	if g.HasExpansions() && !sup.Expand {
		return &OptionError{Backend: backend, Fields: []string{"Expand"}}
	}
	return nil
}

// JoinSpec normalizes an expandable operator's binding to its join
// form: exactly one task, with a zero-cost body when the binding
// supplies none. Both engines apply the same normalization, so an
// expandable operator contributes exactly one join task everywhere
// regardless of what Op.N its binding declared.
func JoinSpec(spec OpSpec) OpSpec {
	spec.Op.N = 1
	if spec.Op.Time == nil {
		spec.Op.Time = func(int) float64 { return 0 }
	}
	return spec
}

// ValidateExpansion applies the engine-independent checks both
// backends run before splicing a materialized sub-graph: the
// expansion must be a valid standalone DAG, its node names must be
// new, and the depth bound must hold. taken reports whether an
// operator name is already scheduled.
func ValidateExpansion(op string, depth int, exp *Expansion, taken func(string) bool) error {
	if depth >= MaxExpandDepth {
		return fmt.Errorf("rts: expansion of %q exceeds depth bound %d", op, MaxExpandDepth)
	}
	if exp.Graph == nil {
		return fmt.Errorf("rts: expansion of %q has no graph", op)
	}
	if err := exp.Graph.Validate(); err != nil {
		return fmt.Errorf("rts: expansion of %q: %w", op, err)
	}
	if len(exp.Graph.Nodes) == 0 {
		return fmt.Errorf("rts: expansion of %q is empty (return a nil Expansion for the base case)", op)
	}
	if exp.Bind == nil {
		return fmt.Errorf("rts: expansion of %q has no binder", op)
	}
	for _, n := range exp.Graph.Nodes {
		if taken(n.Name) {
			return fmt.Errorf("rts: expansion of %q redeclares operator %q", op, n.Name)
		}
	}
	return nil
}
