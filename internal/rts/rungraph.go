package rts

import (
	"fmt"
	"strings"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
)

// Mode selects the execution strategy for a Delirium graph.
type Mode int

// Execution modes: the three configurations of the paper's Figure 6.
const (
	// ModeStatic executes every operator on all processors with a
	// static block decomposition and barriers between operators.
	ModeStatic Mode = iota
	// ModeTaper executes every operator on all processors with the
	// distributed TAPER algorithm and cost functions, with barriers
	// between operators.
	ModeTaper
	// ModeSplit uses the concurrency the split transformation exposed:
	// operators at the same dataflow level run concurrently under the
	// processor-allocation algorithm, and pipelined pairs overlap with
	// a chosen communication granularity.
	ModeSplit
)

func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeTaper:
		return "TAPER"
	case ModeSplit:
		return "TAPER+split"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode resolves a mode name, case-insensitively. It accepts both
// the command-line spellings ("static", "taper", "split") and the
// String() renderings ("TAPER", "TAPER+split"), so ParseMode(m.String())
// round-trips for every valid mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "static":
		return ModeStatic, nil
	case "taper":
		return ModeTaper, nil
	case "split", "taper+split":
		return ModeSplit, nil
	}
	return 0, fmt.Errorf("rts: unknown mode %q (valid: static, taper, split)", s)
}

// ParseModes resolves a -mode flag value: a single mode name, "all"
// for every mode, or a comma-separated list. Both orchrun and
// orchbench parse their mode flags through this helper.
func ParseModes(s string) ([]Mode, error) {
	if strings.EqualFold(s, "all") {
		return []Mode{ModeStatic, ModeTaper, ModeSplit}, nil
	}
	var modes []Mode
	for _, part := range strings.Split(s, ",") {
		m, err := ParseMode(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("unknown mode %q (valid: static, taper, split, all, or a comma-separated list)", part)
		}
		modes = append(modes, m)
	}
	return modes, nil
}

// Binder resolves a graph node to its executable operation.
type Binder func(name string) OpSpec

// RunGraph executes a Delirium graph on the simulated machine under
// the given options and returns the aggregate result. A zero
// opts.Processors defaults to cfg.Processors. Non-pipelined edges
// charge a data-transfer cost between operators; under ModeSplit, the
// whole graph executes as barrier-free dataflow (ExecuteDAG). With a
// Sink set, the simulated clock provides every event timestamp, so
// exported spans are exact.
func RunGraph(cfg machine.Config, g *delirium.Graph, bind Binder, opts RunOpts) (trace.Result, error) {
	if err := opts.Validate(); err != nil {
		return trace.Result{}, err
	}
	if err := g.Validate(); err != nil {
		return trace.Result{}, err
	}
	p := opts.processors(cfg.Processors)
	if p < 1 {
		p = 1
	}
	order, err := g.TopoOrder()
	if err != nil {
		return trace.Result{}, err
	}
	var rec *obs.Recorder
	if opts.Sink != nil {
		names := make([]string, len(order))
		for i, n := range order {
			names[i] = n.Name
		}
		rec = obs.NewRecorder("sim", "", names, p)
	}
	fx, err := simFaults(&cfg, opts, p)
	if err != nil {
		return trace.Result{}, err
	}
	finish := func(r trace.Result) (trace.Result, error) {
		if opts.Sink == nil {
			return r, nil
		}
		return r, opts.Sink.Consume(rec.Finish(r))
	}

	if opts.canceled() {
		return trace.Result{}, CancelError("rts", opts.Ctx)
	}

	if opts.Mode == ModeSplit {
		// Fully adaptive dataflow execution of the whole graph — no
		// barriers; operators enable as predecessors complete, pipelined
		// edges enable consumers incrementally, and processors migrate
		// to whatever is executable.
		r, err := executeDAG(opts.Ctx, cfg, g, bind, p, opts.Omega, rec, fx)
		if err != nil {
			return trace.Result{}, err
		}
		r.Name = fmt.Sprintf("%s/%s", opts.Mode, g.Name)
		return finish(r)
	}

	agg := trace.Result{Name: fmt.Sprintf("%s/%s", opts.Mode, g.Name), Processors: p}
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true, Omega: opts.Omega} }

	runOp := func(op sched.Op, oi int) {
		ob := obs.OpObs{R: rec, Op: oi, Base: agg.Makespan}
		var r trace.Result
		if opts.Mode == ModeStatic {
			r = sched.ExecuteStatic(cfg, op, procs, ob)
		} else {
			// fx persists across the per-operator loop, so a worker's
			// chunk count — and any crash it triggers — carries from one
			// operator to the next.
			r = sched.ExecuteDistributedFault(cfg, op, procs, factory, ob, fx)
		}
		agg.Makespan += r.Makespan
		agg.SeqTime += r.SeqTime
		agg.Chunks += r.Chunks
		agg.Steals += r.Steals
		agg.Messages += r.Messages
	}
	// taken tracks every operator name scheduled so far; expansions must
	// not redeclare names (same contract as the dataflow engines).
	taken := map[string]bool{}
	for _, n := range g.Nodes {
		taken[n.Name] = true
	}
	topIdx := map[string]int{}
	for i, n := range order {
		topIdx[n.Name] = i
	}
	// execBarriered runs one (sub-)graph's operators in topological
	// order with barriers between them. An expandable operator runs its
	// materialized sub-graph to completion before its own join task —
	// the barriered modes have no overlap to exploit, so nesting is
	// plain recursion — then charges the (sub-)graph's edge costs.
	var execBarriered func(g2 *delirium.Graph, bind2 Binder, depth int, idxOf func(string) int) error
	execBarriered = func(g2 *delirium.Graph, bind2 Binder, depth int, idxOf func(string) int) error {
		order2, err := g2.TopoOrder()
		if err != nil {
			return err
		}
		subIdx := func(nm string) int {
			if rec != nil {
				return rec.AddOp(nm)
			}
			return 0
		}
		for _, n := range order2 {
			// The barriered modes execute one operator at a time, so an
			// operator boundary is the natural cancellation point: work
			// already simulated stays charged, the rest is abandoned.
			if opts.canceled() {
				return CancelError("rts", opts.Ctx)
			}
			spec := bind2(n.Name)
			if n.Kind == delirium.Exp && spec.Expand == nil {
				return fmt.Errorf("rts: operator %s is expandable (kind=exp) but its binding has no Expand rule", n.Name)
			}
			if n.Kind != delirium.Exp && spec.Expand != nil {
				return fmt.Errorf("rts: binding provides an Expand rule for non-expandable operator %s (kind=%s)", n.Name, n.Kind)
			}
			oi := idxOf(n.Name)
			if spec.Expand != nil {
				exp, err := spec.Expand(depth)
				if err != nil {
					return fmt.Errorf("rts: expanding %s: %w", n.Name, err)
				}
				if exp != nil {
					if err := ValidateExpansion(n.Name, depth, exp, func(nm string) bool { return taken[nm] }); err != nil {
						return err
					}
					for _, sn := range exp.Graph.Nodes {
						taken[sn.Name] = true
					}
					if err := execBarriered(exp.Graph, exp.Bind, depth+1, subIdx); err != nil {
						return err
					}
				}
				spec = JoinSpec(spec)
			}
			runOp(spec.Op, oi)
		}
		for _, e := range g2.Edges {
			if e.Carried {
				continue
			}
			bytes := e.Bytes
			if e.PerTask {
				cons := bind2(e.To)
				if cons.Expand != nil {
					cons = JoinSpec(cons)
				}
				bytes *= int64(cons.Op.N)
			}
			agg.Makespan += float64(bytes) * cfg.ByteCost / float64(p)
			agg.Messages += p
		}
		return nil
	}
	if err := execBarriered(g, bind, 0, func(nm string) int { return topIdx[nm] }); err != nil {
		return trace.Result{}, err
	}
	return finish(agg)
}
