package rts

import (
	"fmt"
	"strings"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
)

// Mode selects the execution strategy for a Delirium graph.
type Mode int

// Execution modes: the three configurations of the paper's Figure 6.
const (
	// ModeStatic executes every operator on all processors with a
	// static block decomposition and barriers between operators.
	ModeStatic Mode = iota
	// ModeTaper executes every operator on all processors with the
	// distributed TAPER algorithm and cost functions, with barriers
	// between operators.
	ModeTaper
	// ModeSplit uses the concurrency the split transformation exposed:
	// operators at the same dataflow level run concurrently under the
	// processor-allocation algorithm, and pipelined pairs overlap with
	// a chosen communication granularity.
	ModeSplit
)

func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeTaper:
		return "TAPER"
	case ModeSplit:
		return "TAPER+split"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode resolves a mode name, case-insensitively. It accepts both
// the command-line spellings ("static", "taper", "split") and the
// String() renderings ("TAPER", "TAPER+split"), so ParseMode(m.String())
// round-trips for every valid mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "static":
		return ModeStatic, nil
	case "taper":
		return ModeTaper, nil
	case "split", "taper+split":
		return ModeSplit, nil
	}
	return 0, fmt.Errorf("rts: unknown mode %q (valid: static, taper, split)", s)
}

// ParseModes resolves a -mode flag value: a single mode name, "all"
// for every mode, or a comma-separated list. Both orchrun and
// orchbench parse their mode flags through this helper.
func ParseModes(s string) ([]Mode, error) {
	if strings.EqualFold(s, "all") {
		return []Mode{ModeStatic, ModeTaper, ModeSplit}, nil
	}
	var modes []Mode
	for _, part := range strings.Split(s, ",") {
		m, err := ParseMode(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("unknown mode %q (valid: static, taper, split, all, or a comma-separated list)", part)
		}
		modes = append(modes, m)
	}
	return modes, nil
}

// Binder resolves a graph node to its executable operation.
type Binder func(name string) OpSpec

// RunGraph executes a Delirium graph on the simulated machine under
// the given options and returns the aggregate result. A zero
// opts.Processors defaults to cfg.Processors. Non-pipelined edges
// charge a data-transfer cost between operators; under ModeSplit, the
// whole graph executes as barrier-free dataflow (ExecuteDAG). With a
// Sink set, the simulated clock provides every event timestamp, so
// exported spans are exact.
func RunGraph(cfg machine.Config, g *delirium.Graph, bind Binder, opts RunOpts) (trace.Result, error) {
	if err := opts.Validate(); err != nil {
		return trace.Result{}, err
	}
	if err := g.Validate(); err != nil {
		return trace.Result{}, err
	}
	p := opts.processors(cfg.Processors)
	if p < 1 {
		p = 1
	}
	order, err := g.TopoOrder()
	if err != nil {
		return trace.Result{}, err
	}
	var rec *obs.Recorder
	if opts.Sink != nil {
		names := make([]string, len(order))
		for i, n := range order {
			names[i] = n.Name
		}
		rec = obs.NewRecorder("sim", "", names, p)
	}
	fx, err := simFaults(&cfg, opts, p)
	if err != nil {
		return trace.Result{}, err
	}
	finish := func(r trace.Result) (trace.Result, error) {
		if opts.Sink == nil {
			return r, nil
		}
		return r, opts.Sink.Consume(rec.Finish(r))
	}

	if opts.canceled() {
		return trace.Result{}, CancelError("rts", opts.Ctx)
	}

	if opts.Mode == ModeSplit {
		// Fully adaptive dataflow execution of the whole graph — no
		// barriers; operators enable as predecessors complete, pipelined
		// edges enable consumers incrementally, and processors migrate
		// to whatever is executable.
		r, err := executeDAG(opts.Ctx, cfg, g, bind, p, opts.Omega, rec, fx)
		if err != nil {
			return trace.Result{}, err
		}
		r.Name = fmt.Sprintf("%s/%s", opts.Mode, g.Name)
		return finish(r)
	}

	agg := trace.Result{Name: fmt.Sprintf("%s/%s", opts.Mode, g.Name), Processors: p}
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true, Omega: opts.Omega} }

	for oi, n := range order {
		// The barriered modes execute one operator at a time, so an
		// operator boundary is the natural cancellation point: work
		// already simulated stays charged, the rest is abandoned.
		if opts.canceled() {
			return trace.Result{}, CancelError("rts", opts.Ctx)
		}
		spec := bind(n.Name)
		ob := obs.OpObs{R: rec, Op: oi, Base: agg.Makespan}
		var r trace.Result
		if opts.Mode == ModeStatic {
			r = sched.ExecuteStatic(cfg, spec.Op, procs, ob)
		} else {
			// fx persists across the per-operator loop, so a worker's
			// chunk count — and any crash it triggers — carries from one
			// operator to the next.
			r = sched.ExecuteDistributedFault(cfg, spec.Op, procs, factory, ob, fx)
		}
		agg.Makespan += r.Makespan
		agg.SeqTime += r.SeqTime
		agg.Chunks += r.Chunks
		agg.Steals += r.Steals
		agg.Messages += r.Messages
	}
	for _, e := range g.Edges {
		if e.Carried {
			continue
		}
		bytes := e.Bytes
		if e.PerTask {
			bytes *= int64(bind(e.To).Op.N)
		}
		agg.Makespan += float64(bytes) * cfg.ByteCost / float64(p)
		agg.Messages += p
	}
	return finish(agg)
}
