package rts

import (
	"fmt"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
)

// Mode selects the execution strategy for a Delirium graph.
type Mode int

// Execution modes: the three configurations of the paper's Figure 6.
const (
	// ModeStatic executes every operator on all processors with a
	// static block decomposition and barriers between operators.
	ModeStatic Mode = iota
	// ModeTaper executes every operator on all processors with the
	// distributed TAPER algorithm and cost functions, with barriers
	// between operators.
	ModeTaper
	// ModeSplit uses the concurrency the split transformation exposed:
	// operators at the same dataflow level run concurrently under the
	// processor-allocation algorithm, and pipelined pairs overlap with
	// a chosen communication granularity.
	ModeSplit
)

func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeTaper:
		return "TAPER"
	case ModeSplit:
		return "TAPER+split"
	}
	return "?"
}

// Binder resolves a graph node to its executable operation.
type Binder func(name string) OpSpec

// RunGraph executes a Delirium graph on p processors under the given
// mode and returns the aggregate result. Non-pipelined edges charge a
// data-transfer cost between operators; under ModeSplit, a level
// consisting of one producer whose only consumer is the single node of
// the next level and whose edge is pipelined executes as an overlapped
// pair.
func RunGraph(cfg machine.Config, g *delirium.Graph, bind Binder, p int, mode Mode) (trace.Result, error) {
	if err := g.Validate(); err != nil {
		return trace.Result{}, err
	}
	agg := trace.Result{Name: fmt.Sprintf("%s/%s", mode, g.Name), Processors: p}
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }

	addEdgeCost := func(e *delirium.Edge) {
		bytes := e.Bytes
		if e.PerTask {
			bytes *= int64(bind(e.To).Op.N)
		}
		agg.Makespan += float64(bytes) * cfg.ByteCost / float64(p)
		agg.Messages += p
	}
	accumulate := func(r trace.Result) {
		agg.Makespan += r.Makespan
		agg.SeqTime += r.SeqTime
		agg.Chunks += r.Chunks
		agg.Steals += r.Steals
		agg.Messages += r.Messages
	}

	if mode != ModeSplit {
		order, err := g.TopoOrder()
		if err != nil {
			return trace.Result{}, err
		}
		for _, n := range order {
			spec := bind(n.Name)
			var r trace.Result
			if mode == ModeStatic {
				r = sched.ExecuteStatic(cfg, spec.Op, procs)
			} else {
				r = sched.ExecuteDistributed(cfg, spec.Op, procs, factory)
			}
			accumulate(r)
		}
		for _, e := range g.Edges {
			if !e.Carried {
				addEdgeCost(e)
			}
		}
		return agg, nil
	}

	// ModeSplit: fully adaptive dataflow execution of the whole graph —
	// no barriers; operators enable as predecessors complete, pipelined
	// edges enable consumers incrementally, and processors migrate to
	// whatever is executable.
	r, err := ExecuteDAG(cfg, g, bind, p)
	if err != nil {
		return trace.Result{}, err
	}
	r.Name = agg.Name
	return r, nil
}
