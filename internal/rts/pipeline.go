package rts

import (
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
)

// ExecutePipelined runs a producer/consumer pair of parallel operations
// in pipelined fashion: consumer task i becomes ready once the batch of
// producer items containing i has been completed and delivered.
// batch is the communication granularity (items per message), normally
// obtained from ChooseGranularity. pProd and pCons processors are
// dedicated to each side.
//
// Compare with ExecuteBarrier, which inserts a full synchronization
// between the operations — the traditional compilation the paper's
// introduction describes.
func ExecutePipelined(cfg machine.Config, prod, cons OpSpec, pProd, pCons, batch int) trace.Result {
	n := prod.Op.N
	if cons.Op.N != n {
		panic("rts: pipelined pair must have matching task counts")
	}
	if batch < 1 {
		batch = 1
	}
	if pProd < 1 || pCons < 1 {
		panic("rts: pipelined sides need at least one processor each")
	}
	sim := machine.NewSim(cfg)
	res := trace.Result{
		Name:       "pipelined",
		Processors: pProd + pCons,
		Busy:       make([]float64, pProd+pCons),
	}
	res.SeqTime = prod.Op.TotalTime() + cons.Op.TotalTime()

	nBatches := (n + batch - 1) / batch
	batchLeft := make([]int, nBatches) // producer tasks outstanding per batch
	for b := 0; b < nBatches; b++ {
		hi := (b + 1) * batch
		if hi > n {
			hi = n
		}
		batchLeft[b] = hi - b*batch
	}

	// Consumer readiness and idle-consumer wakeup.
	ready := make([]int, 0, n) // ready consumer task indices (FIFO)
	var idleCons []int         // global ids of idle consumer processors
	consStats := sched.NewTaskStats(n)
	finish := make([]float64, pProd+pCons)
	// sendDebt accrues the per-message send overhead a producer
	// processor pays when it completes a batch; it is charged to that
	// processor's next chunk.
	sendDebt := make([]float64, pProd)

	var consLoop func(g int)
	consLoop = func(g int) {
		if len(ready) == 0 {
			idleCons = append(idleCons, g)
			finish[g] = sim.Now()
			return
		}
		// Take up to a small chunk of ready tasks.
		k := clampInt(len(ready)/pCons, len(ready))
		take := ready[:k]
		ready = ready[k:]
		total := cfg.SchedOverhead
		for _, i := range take {
			t := cons.Op.Time(i)
			consStats.Observe(i, t)
			total += t
		}
		res.Chunks++
		res.Busy[pProd+(g-pProd)] += total
		sim.AfterFn(total, consLoop, g)
	}
	// arrive lands batch b on the consumer side. The item range is
	// recomputed from b so the arrival event carries only the batch
	// index (closure-free AfterFn scheduling).
	arrive := func(b int) {
		items := batch
		if (b+1)*batch > n {
			items = n - b*batch
		}
		for i := b * batch; i < b*batch+items; i++ {
			ready = append(ready, i)
		}
		// Wake idle consumers.
		woken := idleCons
		idleCons = nil
		for _, g := range woken {
			sim.AfterFn(0, consLoop, g)
		}
	}
	deliver := func(b, sender int) {
		// The batch's items travel producer → consumer side; the
		// sending processor pays the software overhead.
		items := batch
		if (b+1)*batch > n {
			items = n - b*batch
		}
		if sender < pProd {
			sendDebt[sender] += cfg.MsgOverhead
		}
		cost := cfg.MsgTime(0, pProd, int64(items)*prod.Op.Bytes+32)
		res.Messages++
		sim.AfterFn(cost, arrive, b)
	}

	// Producer side: tasks are drained in index order from a shared
	// queue so that early batches complete early — the property
	// pipelining depends on. The per-chunk dispatch pays a round trip
	// to the queue owner. Chunks are capped at the batch size so no
	// single chunk spans (and delays) many batches.
	pos := 0
	prodStats := sched.NewTaskStats(n)
	prodPolicy := &sched.Taper{UseCostFunction: true}

	var prodLoop func(j int)
	completeTask := func(i, sender int) {
		b := i / batch
		batchLeft[b]--
		if batchLeft[b] == 0 {
			deliver(b, sender)
		}
	}
	// Each producer has at most one chunk in flight, so the chunk
	// bounds live in per-processor slots rather than a per-event
	// closure.
	pendLo := make([]int, pProd)
	pendK := make([]int, pProd)
	prodDone := func(j int) {
		lo, k := pendLo[j], pendK[j]
		for i := lo; i < lo+k; i++ {
			completeTask(i, j)
		}
		prodLoop(j)
	}
	prodLoop = func(j int) {
		if pos >= n {
			finish[j] = sim.Now()
			return
		}
		remaining := n - pos
		k := prodPolicy.NextChunk(remaining, pProd, prodStats)
		k = clampInt(prodPolicy.ScaleChunk(k, pos, prodStats), remaining)
		// Chunks stay small relative to the producer side's aggregate
		// throughput so deliveries flow smoothly: the delivery lag of a
		// batch is roughly one chunk's execution time.
		if cap := maxInt(1, n/(16*pProd)); k > cap {
			k = cap
		}
		lo := pos
		pos += k
		// Index ranges are pre-distributed in batch-grained slabs, so a
		// dispatch costs only the local scheduling event plus the
		// completion token; one message carries the slab handoff.
		res.Messages++
		total := sendDebt[j] + cfg.SchedOverhead
		sendDebt[j] = 0
		for i := lo; i < lo+k; i++ {
			t := prod.Op.Time(i)
			prodStats.Observe(i, t)
			total += t
		}
		res.Chunks++
		res.Busy[j] += total
		pendLo[j], pendK[j] = lo, k
		sim.AfterFn(total, prodDone, j)
	}

	for j := 0; j < pProd; j++ {
		sim.AfterFn(0, prodLoop, j)
	}
	for g := pProd; g < pProd+pCons; g++ {
		sim.AfterFn(0, consLoop, g)
	}
	sim.Run()
	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	res.Makespan = max + cfg.BroadcastTime(pProd+pCons, 8)
	return res
}

// ExecuteBarrier runs the pair with a full synchronization between
// them: the producer completes on all processors, the entire data set
// transfers, then the consumer runs — the traditional approach the
// paper contrasts with ("impose a processor synchronization barrier
// between sub-computations, optimizing each as a separate entity").
func ExecuteBarrier(cfg machine.Config, prod, cons OpSpec, p int, factory sched.Factory) trace.Result {
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	r1 := sched.ExecuteDistributed(cfg, prod.Op, procs, factory, obs.OpObs{})
	r2 := sched.ExecuteDistributed(cfg, cons.Op, procs, factory, obs.OpObs{})
	transfer := float64(prod.Op.Bytes) * float64(prod.Op.N) * cfg.ByteCost / float64(p)
	res := trace.Result{
		Name:       "barrier",
		Processors: p,
		Makespan:   r1.Makespan + transfer + r2.Makespan,
		SeqTime:    r1.SeqTime + r2.SeqTime,
		Chunks:     r1.Chunks + r2.Chunks,
		Steals:     r1.Steals + r2.Steals,
		Messages:   r1.Messages + r2.Messages + p,
		Busy:       make([]float64, p),
	}
	for i := 0; i < p; i++ {
		res.Busy[i] = r1.Busy[i] + r2.Busy[i]
	}
	return res
}
