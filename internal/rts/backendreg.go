package rts

import (
	"fmt"
	"sort"
	"sync"

	"orchestra/internal/machine"
)

// This file is the backend registry: backends self-register by name at
// package init time and every consumer — the cliflag parser, the six
// command binaries, the serve daemon, the fuzz oracle matrix — opens
// them through OpenBackend. Adding a backend means one init function,
// not six switch statements; the per-command `switch backend
// {"sim","native"}` blocks this replaces were exactly the seam that
// made a third backend a cross-cutting change.

// BackendConfig parameterizes the construction of one Backend
// instance. Processors is the default worker count the instance is
// sized for (individual runs may still override via RunOpts);
// Options carries backend-specific string options — unknown keys are
// rejected by the factory with an *OptionError, never ignored.
type BackendConfig struct {
	// Processors sizes the backend (simulated machine processors,
	// forked worker processes). Zero lets the backend choose.
	Processors int
	// Options holds backend-specific settings by name. Every factory
	// rejects keys it does not understand.
	Options map[string]string
}

// BackendFactory constructs a Backend instance from a configuration.
type BackendFactory func(cfg BackendConfig) (Backend, error)

// BackendInfo describes a registered backend to generic consumers
// (flag help, unit labels, harness matrices) without hard-coding
// names.
type BackendInfo struct {
	// Name is the registration name ("sim", "native", "dist").
	Name string
	// Measured reports whether the backend executes tasks for real and
	// reports wall-clock seconds (native, dist), as opposed to charging
	// modeled costs to a simulated clock (sim). Consumers use it for
	// unit labels and for choosing measured-work kernels over modeled
	// ones.
	Measured bool
	// Distributed reports whether workers run in separate OS processes
	// with no shared memory, which requires a Shippable binding.
	Distributed bool
}

type backendEntry struct {
	info    BackendInfo
	factory BackendFactory
}

var (
	backendMu  sync.RWMutex
	backendReg = map[string]backendEntry{}
)

// RegisterBackend adds a backend factory under info.Name. Backends
// call it from an init function; duplicate or empty names panic, since
// they indicate a build-level wiring error no caller can recover from.
func RegisterBackend(info BackendInfo, factory BackendFactory) {
	if info.Name == "" {
		panic("rts: backend registration with empty name")
	}
	if factory == nil {
		panic("rts: backend " + info.Name + " registered with nil factory")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendReg[info.Name]; dup {
		panic("rts: backend " + info.Name + " registered twice")
	}
	backendReg[info.Name] = backendEntry{info: info, factory: factory}
}

// OpenBackend constructs an instance of the named backend. Unknown
// names report the registered alternatives; unknown cfg.Options keys
// surface as *OptionError from the factory.
func OpenBackend(name string, cfg BackendConfig) (Backend, error) {
	backendMu.RLock()
	e, ok := backendReg[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rts: unknown backend %q (registered: %v)", name, BackendNames())
	}
	return e.factory(cfg)
}

// LookupBackend returns the registration metadata for name.
func LookupBackend(name string) (BackendInfo, bool) {
	backendMu.RLock()
	e, ok := backendReg[name]
	backendMu.RUnlock()
	return e.info, ok
}

// BackendNames lists the registered backend names, sorted. Sorting
// keeps the list independent of package-init order, which Go does not
// pin down across builds.
func BackendNames() []string {
	backendMu.RLock()
	names := make([]string, 0, len(backendReg))
	for n := range backendReg {
		names = append(names, n)
	}
	backendMu.RUnlock()
	sort.Strings(names)
	return names
}

// CheckOptions rejects unknown keys in a BackendConfig.Options map.
// Factories call it with the set of keys they understand, so a typo'd
// option fails loudly at open time instead of silently configuring
// nothing.
func CheckOptions(backend string, opts map[string]string, known ...string) error {
	var bad []string
	for k := range opts {
		ok := false
		for _, kn := range known {
			if k == kn {
				ok = true
				break
			}
		}
		if !ok {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return &OptionError{Backend: backend, Fields: bad, Known: known}
}

func init() {
	RegisterBackend(BackendInfo{Name: "sim"}, func(cfg BackendConfig) (Backend, error) {
		if err := CheckOptions("sim", cfg.Options); err != nil {
			return nil, err
		}
		p := cfg.Processors
		if p < 1 {
			p = 1
		}
		return NewSimBackend(machine.DefaultConfig(p)), nil
	})
}
