package rts

import (
	"fmt"
	"math"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
	"orchestra/internal/stats"
)

// logNormalSpec builds a seeded operation whose task times are
// log-normal with mean ≈ 1 and the requested coefficient of
// variation, the irregularity family the paper's workloads use.
func logNormalSpec(n int, cv float64, seed uint64) OpSpec {
	rng := stats.NewRNG(seed)
	times := make([]float64, n)
	if cv <= 0 {
		for i := range times {
			times[i] = 1
		}
	} else {
		sigma := math.Sqrt(math.Log(1 + cv*cv))
		mu := -sigma * sigma / 2
		for i := range times {
			times[i] = rng.LogNormal(mu, sigma)
		}
	}
	t := times
	s := OpSpec{Op: sched.Op{
		Name: "cal", N: n, Bytes: 64,
		Time: func(i int) float64 { return t[i] },
		Hint: func(i int) float64 { return t[i] },
	}}
	s.SampleStats(128)
	return s
}

// TestCalibrationContract is the contract the profile-guided split
// search relies on (internal/search): the terms of equation (1) must
// agree with what a traced execution actually measures, across the
// (cv, p) grid the workloads occupy. Specifically, against the obs
// trace of a seeded single-operator run:
//
//   - the predicted TAPER chunk count tracks the number of KindChunk
//     events within 3× either way (the executed policy additionally
//     pays factoring-sized cold-start chunks before its statistics
//     warm, which the steady-state recurrence deliberately omits), and
//   - the Compute term (N·μ/p, the per-processor compute share) tracks
//     the measured per-processor busy time within 30%.
//
// If this test starts failing, the search's calibrated ranking is
// modelling a different runtime than the one that executes — fix the
// estimator (or the executor), not the tolerances.
func TestCalibrationContract(t *testing.T) {
	const n = 4096
	for _, cv := range []float64{0.5, 1.0, 1.5} {
		for _, p := range []int{4, 16, 64} {
			t.Run(fmt.Sprintf("cv=%.1f/p=%d", cv, p), func(t *testing.T) {
				spec := logNormalSpec(n, cv, 0xca1^uint64(p)+uint64(cv*8))
				g := delirium.NewGraph("cal")
				if err := g.AddNode(&delirium.Node{Name: "cal", Kind: delirium.Par, Tasks: "n"}); err != nil {
					t.Fatal(err)
				}
				cfg := machine.DefaultConfig(p)
				var col obs.Collector
				res, err := RunGraph(cfg, g, func(string) OpSpec { return spec },
					RunOpts{Processors: p, Mode: ModeTaper, Sink: &col})
				if err != nil {
					t.Fatal(err)
				}
				tr := col.Trace
				if tr == nil {
					t.Fatal("no trace collected")
				}

				// Chunk-count calibration, from the trace itself.
				chunks, busy := 0, 0.0
				for _, ev := range tr.Events {
					if ev.Kind == obs.KindChunk {
						chunks++
						busy += ev.T1 - ev.T0
					}
				}
				if chunks != res.Chunks {
					t.Fatalf("trace has %d chunk events, result says %d", chunks, res.Chunks)
				}
				cvMeasured := 0.0
				if spec.Mu > 0 {
					cvMeasured = spec.Sigma / spec.Mu
				}
				predicted := PredictChunks(n, p, cvMeasured)
				if r := float64(predicted) / float64(chunks); r < 1.0/3 || r > 3 {
					t.Errorf("predicted %d chunks, measured %d (ratio %.2f outside [1/3, 3])",
						predicted, chunks, r)
				}

				// Compute-share calibration: the trace's total busy time
				// divided by p is the measured share of equation (1)'s
				// Compute term.
				est := FinishEstimate(cfg, spec, p)
				share := busy / float64(p)
				if d := math.Abs(est.Compute-share) / share; d > 0.30 {
					t.Errorf("Compute term %v vs measured share %v (%.0f%% off)",
						est.Compute, share, 100*d)
				}
			})
		}
	}
}
