package rts

import (
	"strings"
	"testing"

	"orchestra/internal/delirium"
)

func twoNodeGraph(t *testing.T) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("t")
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b"})
	return g
}

// TestKernelRegistryRegistration pins the registry contract: empty
// names, nil constructors and duplicates are refused (a duplicate
// would make Binding resolution depend on package init order).
func TestKernelRegistryRegistration(t *testing.T) {
	r := NewKernelRegistry()
	fn := func(*BindEnv, string) (OpSpec, error) { return OpSpec{}, nil }
	if err := r.Register("k", fn); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("k", fn); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register("", fn); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register("nil", nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "k" {
		t.Fatalf("names %v, want [k]", names)
	}
}

// TestBindUnknownKernel checks Bind fails eagerly — at bind time, with
// the unknown name and the registered alternatives in the message —
// rather than mid-execution.
func TestBindUnknownKernel(t *testing.T) {
	r := NewKernelRegistry()
	r.MustRegister("real", func(*BindEnv, string) (OpSpec, error) { return OpSpec{}, nil })
	g := twoNodeGraph(t)
	_, err := BindWith(r, g, NamedBinding("ghost", nil))
	if err == nil {
		t.Fatal("unknown kernel bound")
	}
	if !strings.Contains(err.Error(), "ghost") || !strings.Contains(err.Error(), "real") {
		t.Fatalf("error %q should name the unknown kernel and the registered set", err)
	}
	if _, err := BindWith(r, g, Binding{}); err == nil {
		t.Fatal("empty binding accepted")
	}
}

// TestBindTableOverride checks per-operator kernel overrides resolve
// through Table with Kernel as the fallback.
func TestBindTableOverride(t *testing.T) {
	r := NewKernelRegistry()
	mk := func(tag string) KernelFunc {
		return func(_ *BindEnv, op string) (OpSpec, error) {
			return OpSpec{Mu: float64(len(tag))}, nil
		}
	}
	r.MustRegister("base", mk("x"))
	r.MustRegister("override", mk("xxx"))
	g := twoNodeGraph(t)
	b, err := BindWith(r, g, Binding{Kernel: "base", Table: map[string]string{"b": "override"}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec("a").Mu != 1 || b.Spec("b").Mu != 3 {
		t.Fatalf("override not applied: a=%g b=%g", b.Spec("a").Mu, b.Spec("b").Mu)
	}
	if !b.Shippable() {
		t.Fatal("registry binding should be shippable")
	}
}

// TestBindClosureNotShippable pins the one asymmetry of the redesign:
// a closure binding executes locally but can never cross a socket.
func TestBindClosureNotShippable(t *testing.T) {
	b := BindClosure(func(string) OpSpec { return OpSpec{Mu: 7} })
	if b.Shippable() {
		t.Fatal("closure binding claims to be shippable")
	}
	if b.Spec("anything").Mu != 7 {
		t.Fatal("closure not consulted")
	}
	if _, ok := b.Digest(); ok {
		t.Fatal("closure binding has no digest source")
	}
}

// TestBindEnvMemoAndDigest checks the shared-state path kernels use:
// one build per key, and SetDigest callable from inside the build
// (the build runs without the environment lock held).
func TestBindEnvMemoAndDigest(t *testing.T) {
	env := &BindEnv{Params: KernelParams{}}
	builds := 0
	for i := 0; i < 3; i++ {
		v, err := env.Memo("k", func() (any, error) {
			builds++
			env.SetDigest(func() string { return "d" })
			return 42, nil
		})
		if err != nil || v.(int) != 42 {
			t.Fatalf("memo: %v, %v", v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want once", builds)
	}
	if d, ok := env.Digest(); !ok || d != "d" {
		t.Fatalf("digest %q, %v", d, ok)
	}
}

// TestKernelParamsRoundTrip checks the typed accessors and setters
// agree, and defaults apply on absent or malformed values.
func TestKernelParamsRoundTrip(t *testing.T) {
	p := KernelParams{}
	p.SetInt("n", 1024)
	p.SetUint64("seed", 1<<40)
	p.SetFloat("cv", 1.5)
	if p.Int("n", 0) != 1024 || p.Uint64("seed", 0) != 1<<40 || p.Float("cv", 0) != 1.5 {
		t.Fatalf("round trip failed: %v", p)
	}
	if p.Int("missing", 7) != 7 || p.Float("n", 0) != 1024 {
		t.Fatal("defaults or cross-type reads wrong")
	}
	p["bad"] = "zzz"
	if p.Int("bad", 3) != 3 {
		t.Fatal("malformed value should fall back to the default")
	}
	if p.Str("bad", "") != "zzz" {
		t.Fatal("Str should return the raw value")
	}
}

// TestBackendRegistryNames checks the global registry holds exactly
// the compiled-in backends that registered from this package (sim) —
// native and dist register from their own packages, so from inside
// rts only sim is visible, which keeps the test hermetic.
func TestBackendRegistryNames(t *testing.T) {
	names := BackendNames()
	found := false
	for _, n := range names {
		if n == "sim" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sim not registered: %v", names)
	}
	info, ok := LookupBackend("sim")
	if !ok || info.Measured || info.Distributed {
		t.Fatalf("sim info wrong: %+v ok=%v", info, ok)
	}
	if _, err := OpenBackend("no-such-backend", BackendConfig{}); err == nil ||
		!strings.Contains(err.Error(), "no-such-backend") {
		t.Fatalf("unknown backend error should name it, got %v", err)
	}
	be, err := OpenBackend("sim", BackendConfig{Processors: 8})
	if err != nil || be.Name() != "sim" {
		t.Fatalf("open sim: %v, %v", be, err)
	}
}
