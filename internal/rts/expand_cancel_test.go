package rts

import (
	"context"
	"strconv"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/sched"
)

// expandCancelGraph is a (par) → x (exp) → out (par): the expansion in
// the middle is where the cancellation lands.
func expandCancelGraph(t *testing.T, n int) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("expcancel")
	nodes := []*delirium.Node{
		{Name: "a", Kind: delirium.Par, Tasks: strconv.Itoa(n)},
		{Name: "x", Kind: delirium.Exp, Tasks: "1", Rule: "t"},
		{Name: "out", Kind: delirium.Par, Tasks: strconv.Itoa(n)},
	}
	for _, nd := range nodes {
		if err := g.AddNode(nd); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "x"})
	g.AddEdge(&delirium.Edge{From: "x", To: "out"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// expandCancelBinder cancels the run's own context from inside the
// expansion hook — after a completed, before the sub-graph or the join
// ran — so cancellation arrives exactly mid-expansion.
func expandCancelBinder(cancel context.CancelFunc, n int) Binder {
	return func(name string) OpSpec {
		spec := OpSpec{Op: sched.Op{Name: name, N: n, Time: func(int) float64 { return 1 }}, Mu: 1}
		if name != "x" {
			return spec
		}
		spec.Op.N = 1
		spec.Expand = func(depth int) (*Expansion, error) {
			cancel()
			sub := delirium.NewGraph("x")
			sub.AddNode(&delirium.Node{Name: "x/0", Kind: delirium.Par, Tasks: strconv.Itoa(n)})
			return &Expansion{
				Graph: sub,
				Bind: func(nm string) OpSpec {
					return OpSpec{Op: sched.Op{Name: nm, N: n, Time: func(int) float64 { return 1 }}, Mu: 1}
				},
			}, nil
		}
		return spec
	}
}

// TestSimCancelMidExpansion checks both simulator execution paths
// (the dataflow engine and the barriered recursion) surface a
// cancellation that arrives while an operator is expanding: the run
// must abandon the spliced sub-graph and return the distinguishable
// cancel error, not stall or report success.
func TestSimCancelMidExpansion(t *testing.T) {
	for _, mode := range []Mode{ModeSplit, ModeStatic, ModeTaper} {
		t.Run(mode.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			g := expandCancelGraph(t, 64)
			be := NewSimBackend(machine.DefaultConfig(2))
			_, err := be.Run(g, BindClosure(expandCancelBinder(cancel, 64)), RunOpts{
				Processors: 2, Mode: mode, Ctx: ctx,
			})
			if !IsCanceled(err) {
				t.Fatalf("mode %v: error = %v, want one wrapping ErrCanceled", mode, err)
			}
		})
	}
}
