package rts

import (
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
)

func dagGraph(t *testing.T, edges [][2]string, pipelined map[[2]string]bool, nodes ...string) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("test")
	for _, n := range nodes {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		g.AddEdge(&delirium.Edge{From: e[0], To: e[1], Bytes: 8, PerTask: true,
			Pipelined: pipelined[e]})
	}
	return g
}

func TestExecuteDAGChain(t *testing.T) {
	g := dagGraph(t, [][2]string{{"a", "b"}, {"b", "c"}}, nil, "a", "b", "c")
	bind := func(string) OpSpec { return uniformSpec(512, 1) }
	cfg := machine.DefaultConfig(32)
	r, err := ExecuteDAG(cfg, g, bind, RunOpts{Processors: 32})
	if err != nil {
		t.Fatal(err)
	}
	ideal := r.SeqTime / 32
	if r.Makespan < ideal {
		t.Fatalf("makespan %v below ideal %v", r.Makespan, ideal)
	}
	if r.Makespan > 1.5*ideal {
		t.Fatalf("chain too slow: %v vs ideal %v", r.Makespan, ideal)
	}
	var busy float64
	for _, b := range r.Busy {
		busy += b
	}
	if busy < r.SeqTime {
		t.Fatalf("lost work: %v < %v", busy, r.SeqTime)
	}
}

func TestExecuteDAGDiamondOverlap(t *testing.T) {
	// a -> {b, c} -> d: b and c run concurrently; total time is close
	// to the total work divided by p, not the sum of phase times.
	g := dagGraph(t, [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		nil, "a", "b", "c", "d")
	bind := func(string) OpSpec { return uniformSpec(1024, 1) }
	cfg := machine.DefaultConfig(64)
	r, err := ExecuteDAG(cfg, g, bind, RunOpts{Processors: 64})
	if err != nil {
		t.Fatal(err)
	}
	ideal := r.SeqTime / 64
	if r.Makespan > 1.4*ideal {
		t.Fatalf("diamond did not overlap: %v vs ideal %v", r.Makespan, ideal)
	}
}

func TestExecuteDAGRespectsDependence(t *testing.T) {
	// A two-node chain cannot finish faster than the critical path:
	// half the work must wait for the first half.
	g := dagGraph(t, [][2]string{{"a", "b"}}, nil, "a", "b")
	bind := func(string) OpSpec { return uniformSpec(256, 1) }
	cfg := machine.DefaultConfig(256)
	r, err := ExecuteDAG(cfg, g, bind, RunOpts{Processors: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Each op has 256 tasks of time 1 on 256 procs: critical path >= 2.
	if r.Makespan < 2 {
		t.Fatalf("dependence violated: makespan %v", r.Makespan)
	}
}

func TestExecuteDAGPipelinedGateOverlaps(t *testing.T) {
	// With a pipelined edge, the consumer overlaps the producer's
	// irregular tail and the pair finishes faster than with a plain
	// edge, which gates the consumer on the producer's last task.
	plain := dagGraph(t, [][2]string{{"a", "b"}}, nil, "a", "b")
	piped := dagGraph(t, [][2]string{{"a", "b"}},
		map[[2]string]bool{{"a", "b"}: true}, "a", "b")
	// The producer runs at ~3 tasks/processor, so its makespan is
	// floored by task granularity; the consumer carries enough work to
	// fill the idle tail when the gate opens incrementally.
	prod := boundedIrregularSpec(1536, 41)
	cons := uniformSpec(1536, 8)
	bind := func(name string) OpSpec {
		if name == "a" {
			return prod
		}
		return cons
	}
	cfg := machine.DefaultConfig(512)

	// Observe when the consumer first dispatches and when the producer
	// completes — both read off the event trace: with a plain edge the
	// consumer is gated on the whole producer; with a pipelined edge it
	// starts on partial data.
	run := func(g *delirium.Graph) (consStart, prodFinish, makespan float64) {
		var col obs.Collector
		r, err := ExecuteDAG(cfg, g, bind, RunOpts{Processors: 512, Sink: &col})
		if err != nil {
			t.Fatal(err)
		}
		opIdx := func(name string) int32 {
			for i, n := range col.Trace.Ops {
				if n == name {
					return int32(i)
				}
			}
			t.Fatalf("op %q not in trace", name)
			return -1
		}
		a, b := opIdx("a"), opIdx("b")
		consStart = -1
		for _, e := range col.Trace.Events {
			if e.Kind != obs.KindChunk {
				continue
			}
			if e.Op == b && (consStart < 0 || e.T0 < consStart) {
				consStart = e.T0
			}
			if e.Op == a && e.T1 > prodFinish {
				prodFinish = e.T1
			}
		}
		return consStart, prodFinish, r.Makespan
	}

	plainStart, plainProd, plainSpan := run(plain)
	pipedStart, pipedProd, pipedSpan := run(piped)

	if plainStart < plainProd {
		t.Fatalf("plain edge let the consumer start (%v) before the producer finished (%v)",
			plainStart, plainProd)
	}
	if pipedStart >= pipedProd {
		t.Fatalf("pipelined edge did not overlap: consumer at %v, producer finished %v",
			pipedStart, pipedProd)
	}
	// Overlap must not cost anything end to end.
	if pipedSpan > 1.05*plainSpan {
		t.Fatalf("pipelined span %v much worse than plain %v", pipedSpan, plainSpan)
	}
}

// TestExecuteDAGOneProcHintedNoStall pins a dispatch deadlock: on one
// processor, topological tie-breaking can leave an operator's queue
// owned by a phantom processor (allocation shares can sum past p), so
// it is reachable only through the steal path. When the idle
// processor's single "best operator" pick was an op whose gate-enabled
// tasks all sat behind blocked queue fronts (hinted queues are
// expensive-first, not index-ordered), the old code parked the
// processor without trying the other — dispatchable — operator, and
// nothing ever woke it. The trigger was as mundane as the *edge
// declaration order* of the psirrfan split graph, so both orders run
// here.
func TestExecuteDAGOneProcHintedNoStall(t *testing.T) {
	hinted := func(name string, n int, seed uint64) OpSpec {
		s := boundedIrregularSpec(n, seed)
		s.Op.Name = name
		return s
	}
	orders := map[string][][2]string{
		"stalling": {{"projI", "outI"}, {"projPre", "projI"}, {"projPre", "update"}, {"update", "outD"}},
		"working":  {{"update", "outD"}, {"projI", "outI"}, {"projPre", "update"}, {"projPre", "projI"}},
	}
	for label, edges := range orders {
		g := dagGraph(t, edges, map[[2]string]bool{{"update", "outD"}: true},
			"projPre", "projI", "update", "outI", "outD")
		bind := func(name string) OpSpec { return hinted(name, 64, 7) }
		r, err := ExecuteDAG(machine.DefaultConfig(1), g, bind, RunOpts{Processors: 1})
		if err != nil {
			t.Fatalf("%s edge order: %v", label, err)
		}
		var busy float64
		for _, b := range r.Busy {
			busy += b
		}
		if busy < r.SeqTime {
			t.Errorf("%s edge order: lost work: busy %v < seq %v", label, busy, r.SeqTime)
		}
	}
}

func TestExecuteDAGIndependentSources(t *testing.T) {
	g := dagGraph(t, nil, nil, "a", "b", "c")
	bind := func(string) OpSpec { return uniformSpec(512, 1) }
	cfg := machine.DefaultConfig(48)
	r, err := ExecuteDAG(cfg, g, bind, RunOpts{Processors: 48})
	if err != nil {
		t.Fatal(err)
	}
	ideal := r.SeqTime / 48
	if r.Makespan > 1.3*ideal {
		t.Fatalf("independent ops did not share the machine: %v vs %v", r.Makespan, ideal)
	}
}

func TestExecuteDAGAbsorbsIrregularity(t *testing.T) {
	// The headline behaviour: an irregular op co-scheduled with a
	// regular one completes in near the combined ideal time, while the
	// chain pays the irregular op's straggler overhang separately.
	// The irregular op alone is granularity-floored (~3 tasks per
	// processor, two expensive tasks on some processor); co-scheduled
	// with a heavy regular op, the idle capacity absorbs the floor.
	irr := boundedIrregularSpec(1536, 31)
	reg := uniformSpec(2048, 8)
	bindBoth := func(name string) OpSpec {
		if name == "a" {
			return irr
		}
		return reg
	}
	conc := dagGraph(t, nil, nil, "a", "b")
	cfg := machine.DefaultConfig(512)
	r, err := ExecuteDAG(cfg, conc, bindBoth, RunOpts{Processors: 512})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]int, 512)
	for i := range procs {
		procs[i] = i
	}
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }
	sep := sched.ExecuteDistributed(cfg, irr.Op, procs, factory, obs.OpObs{}).Makespan +
		sched.ExecuteDistributed(cfg, reg.Op, procs, factory, obs.OpObs{}).Makespan
	if r.Makespan >= sep {
		t.Fatalf("co-scheduling (%v) should beat separate phases (%v)", r.Makespan, sep)
	}
}

func TestExecuteDAGDeterministic(t *testing.T) {
	g := dagGraph(t, [][2]string{{"a", "b"}}, nil, "a", "b")
	bind := func(name string) OpSpec { return irregularSpec(512, 5) }
	cfg := machine.DefaultConfig(64)
	r1, _ := ExecuteDAG(cfg, g, bind, RunOpts{Processors: 64})
	r2, _ := ExecuteDAG(cfg, g, bind, RunOpts{Processors: 64})
	if r1.Makespan != r2.Makespan || r1.Steals != r2.Steals {
		t.Fatal("DAG execution not deterministic")
	}
}

func TestExecuteDAGInvalidGraph(t *testing.T) {
	g := delirium.NewGraph("bad")
	_ = g.AddNode(&delirium.Node{Name: "a"})
	g.AddEdge(&delirium.Edge{From: "a", To: "ghost"})
	if _, err := ExecuteDAG(machine.DefaultConfig(4), g, func(string) OpSpec {
		return uniformSpec(4, 1)
	}, RunOpts{Processors: 4}); err == nil {
		t.Fatal("invalid graph accepted")
	}
}
