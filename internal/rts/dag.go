package rts

import (
	"context"
	"fmt"

	"orchestra/internal/delirium"
	"orchestra/internal/fault"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
)

// ExecuteDAG executes an entire Delirium graph adaptively on p
// processors: every operator is decomposed onto the processor subset
// the allocation algorithm assigned it, operators become executable as
// their dataflow predecessors complete (incrementally, in batches of
// the chosen communication granularity, for pipelined edges), and a
// processor with no work left in its own operator is re-assigned
// chunks from any executable operator. There are no barriers anywhere:
// this is the orchestration the paper's title refers to — the runtime
// "uses the additional parallelism of one sub-computation to
// compensate for communication constraints or load imbalance in the
// other".
//
// Only Processors, Omega and Sink of opts are consulted: ExecuteDAG
// is the engine behind ModeSplit, so the mode field is ignored.
func ExecuteDAG(cfg machine.Config, g *delirium.Graph, bind Binder, opts RunOpts) (trace.Result, error) {
	opts.Mode = ModeSplit
	if err := opts.Validate(); err != nil {
		return trace.Result{}, err
	}
	if err := g.Validate(); err != nil {
		return trace.Result{}, err
	}
	p := opts.processors(cfg.Processors)
	if p < 1 {
		p = 1
	}
	var rec *obs.Recorder
	if opts.Sink != nil {
		order, err := g.TopoOrder()
		if err != nil {
			return trace.Result{}, err
		}
		names := make([]string, len(order))
		for i, n := range order {
			names[i] = n.Name
		}
		rec = obs.NewRecorder("sim", "", names, p)
	}
	fx, err := simFaults(&cfg, opts, p)
	if err != nil {
		return trace.Result{}, err
	}
	r, err := executeDAG(opts.Ctx, cfg, g, bind, p, opts.Omega, rec, fx)
	if err != nil {
		return trace.Result{}, err
	}
	if opts.Sink != nil {
		return r, opts.Sink.Consume(rec.Finish(r))
	}
	return r, nil
}

// simFaults validates a run's fault plan against the resolved
// processor count and builds the injection state: a fault.Exec for the
// executor's chunk boundaries, plus a MsgPerturb hook on the machine
// config for message delay/loss. Static execution is closed-form (no
// scheduling events to survive through), so worker faults under
// ModeStatic are rejected rather than silently ignored.
func simFaults(cfg *machine.Config, opts RunOpts, p int) (*fault.Exec, error) {
	plan := opts.Fault
	if plan == nil {
		return nil, nil
	}
	if err := plan.Validate(p); err != nil {
		return nil, err
	}
	if plan.HasWorkerFaults() && opts.Mode == ModeStatic {
		return nil, fmt.Errorf("rts: static execution cannot survive worker faults (plan %q)", plan)
	}
	fx := fault.NewExec(plan, p)
	if plan.HasMsgFaults() {
		cfg.MsgPerturb = fx.MsgCost
	}
	return fx, nil
}

// executeDAG is the barrier-free engine shared by ExecuteDAG and
// RunGraph's ModeSplit path. ctx, rec and fx may be nil. A canceled
// context makes every processor stop taking chunks at its next
// scheduling decision; in-flight simulated chunks drain and the run
// returns a CancelError instead of a result.
func executeDAG(ctx context.Context, cfg machine.Config, g *delirium.Graph, bind Binder, p int, omega float64, rec *obs.Recorder, fx *fault.Exec) (trace.Result, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return trace.Result{}, err
	}
	sim := machine.NewSim(cfg)
	res := trace.Result{Name: "dag/" + g.Name, Processors: p, Busy: make([]float64, p)}

	// Operator state: parallel slices, appended to mid-run by runtime
	// expansion. The event loop is single-threaded, so plain appends
	// are safe, and every closure below sees the grown tables through
	// the captured slice variables.
	type inEdge struct {
		from      int
		pipelined bool
		batch     int
	}
	var (
		specs     []OpSpec
		names     []string
		index     = map[string]int{}
		inEdges   [][]inEdge
		alloc     []int
		procBase  []int
		queues    [][]sched.TaskQueue
		tstats    []*sched.TaskStats
		policies  []sched.Policy
		unsched   []int   // tasks not yet dispatched
		doneTasks []int   // tasks completed
		doneMark  [][]bool
		donePfx   []int // contiguous completed prefix
		done      [][]int
		spent     [][]float64
		expandFns []ExpandFunc
		expDepth  []int
		expParent []int // expansion that materialized this op, or -1
		expLeft   []int // -1 until expanded; then sub-tasks not yet done
		pendExp   []int // expandable ops not yet expanded
	)
	totalOutstanding := 0

	// addOp appends one operator's state (allocation and queues come
	// separately, per level — see place).
	addOp := func(nd *delirium.Node, spec OpSpec, depth, parent int) error {
		if nd.Kind == delirium.Exp && spec.Expand == nil {
			return fmt.Errorf("rts: operator %s is expandable (kind=exp) but its binding has no Expand rule", nd.Name)
		}
		if nd.Kind != delirium.Exp && spec.Expand != nil {
			return fmt.Errorf("rts: binding provides an Expand rule for non-expandable operator %s (kind=%s)", nd.Name, nd.Kind)
		}
		if spec.Expand != nil {
			spec = JoinSpec(spec)
			pendExp = append(pendExp, len(specs))
		}
		index[nd.Name] = len(specs)
		n := spec.Op.N
		specs = append(specs, spec)
		names = append(names, nd.Name)
		inEdges = append(inEdges, nil)
		alloc = append(alloc, 0)
		procBase = append(procBase, 0)
		queues = append(queues, nil)
		tstats = append(tstats, sched.NewTaskStats(n))
		policies = append(policies, &sched.Taper{UseCostFunction: true, Omega: omega})
		unsched = append(unsched, n)
		doneTasks = append(doneTasks, 0)
		doneMark = append(doneMark, make([]bool, n))
		donePfx = append(donePfx, 0)
		done = append(done, nil)
		spent = append(spent, nil)
		expandFns = append(expandFns, spec.Expand)
		expDepth = append(expDepth, depth)
		expParent = append(expParent, parent)
		expLeft = append(expLeft, -1)
		// The sequential pass: TotalTime executes every task once, in
		// topological order, which also settles kernel arrays upfront
		// (kernel contract rule 1 — re-executions are idempotent).
		res.SeqTime += spec.Op.TotalTime()
		totalOutstanding += n
		return nil
	}

	// wire installs g2's edges among already-added operators, with
	// batch granularity for pipelined ones. Edges touching an
	// expandable endpoint are always completion-gated: a consumer must
	// not start against a not-yet-materialized sub-graph, and an
	// expandable producer's join task is its only observable progress.
	wire := func(g2 *delirium.Graph) {
		for _, e := range g2.Edges {
			if e.Carried {
				continue
			}
			f, t := index[e.From], index[e.To]
			ie := inEdge{from: f}
			if e.Pipelined && expandFns[f] == nil && expandFns[t] == nil {
				ie.pipelined = true
				ie.batch = ChoosePairGranularityOmega(cfg, specs[f], p, specs[f].Op.Bytes, omega)
			}
			inEdges[t] = append(inEdges[t], ie)
		}
	}

	// place allocates processors to g2's operators and decomposes their
	// task queues: operators that can execute concurrently (the same
	// dataflow level) divide the machine among themselves; operators in
	// different levels execute at different times and therefore own
	// overlapping processor ranges. Each operator's data is decomposed
	// once onto its owners (owner-computes); idle processors migrate at
	// runtime.
	place := func(g2 *delirium.Graph) error {
		levels, err := g2.Levels()
		if err != nil {
			return err
		}
		for _, level := range levels {
			lspecs := make([]OpSpec, len(level))
			lnames := make([]string, len(level))
			idxs := make([]int, len(level))
			for i, n := range level {
				idxs[i] = index[n.Name]
				lspecs[i] = specs[idxs[i]]
				lnames[i] = n.Name
			}
			shares := AllocateManyOmega(cfg, lspecs, p, omega, rec, lnames...)
			base := 0
			for i, o := range idxs {
				alloc[o] = shares[i]
				procBase[o] = base
				base += shares[i]
			}
		}
		for _, nd := range g2.Nodes {
			// The allocator can hand an operator a zero share when a level
			// has more operators than processors; its tasks must still live
			// in a queue (unowned, reached through the steal path) or they
			// would be undispatchable and the run would stall.
			o := index[nd.Name]
			qn := alloc[o]
			if qn < 1 {
				qn = 1
			}
			queues[o] = sched.Decompose(specs[o].Op, qn)
			done[o] = make([]int, len(queues[o]))
			spent[o] = make([]float64, len(queues[o]))
		}
		return nil
	}

	for _, n := range order {
		if err := addOp(n, bind(n.Name), 0, -1); err != nil {
			return trace.Result{}, err
		}
	}
	wire(g)
	if err := place(g); err != nil {
		return trace.Result{}, err
	}
	// ownQueue reports the queue index processor gp owns in op o, or -1.
	ownQueue := func(gp, o int) int {
		j := gp - procBase[o]
		if j >= 0 && j < alloc[o] {
			return j
		}
		return -1
	}

	// gate reports how many tasks of op o are executable given its
	// predecessors' progress: min over incoming edges of the enabled
	// prefix. Pipelined edges enable the consumer in proportion to the
	// producer's delivered batches; ordinary edges enable everything
	// only once the producer is fully done.
	//
	// Pipelined progress is the producer's contiguous completed prefix,
	// not its completion count: steals finish tasks out of order, and a
	// count of 50 completions may coexist with task 0 still queued — a
	// consumer enabled from the count would read tasks that have not
	// produced anything yet on a real machine.
	gate := func(o int) int {
		if expandFns[o] != nil && expLeft[o] != 0 {
			// The join task of an expandable operator is held until its
			// materialized sub-graph drains (expLeft hits 0 — or the base
			// case sets it there directly). -1 means not yet expanded.
			return 0
		}
		n := specs[o].Op.N
		avail := n
		for _, ie := range inEdges[o] {
			pn := specs[ie.from].Op.N
			var en int
			if doneTasks[ie.from] >= pn {
				en = n
			} else if ie.pipelined && pn > 0 {
				delivered := donePfx[ie.from] / ie.batch * ie.batch
				en = int(int64(delivered) * int64(n) / int64(pn))
			} else {
				en = 0
			}
			if en < avail {
				avail = en
			}
		}
		return avail
	}
	// dispatched(o) = tasks handed to processors so far.
	dispatched := func(o int) int { return specs[o].Op.N - unsched[o] }

	// maybeExpand materializes every pending expandable operator whose
	// predecessors have fully completed, to a fixpoint: an expansion may
	// itself introduce expandable sources that are immediately ready
	// (recursion — bounded by MaxExpandDepth via ValidateExpansion).
	// Runs inside the single-threaded event loop, so the appends need no
	// synchronization. A failure lands in runErr and aborts the run.
	var runErr error
	maybeExpand := func() {
		for progress := true; progress && runErr == nil; {
			progress = false
			for pi := 0; pi < len(pendExp); pi++ {
				o := pendExp[pi]
				ready := true
				for _, ie := range inEdges[o] {
					if doneTasks[ie.from] < specs[ie.from].Op.N {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				pendExp = append(pendExp[:pi], pendExp[pi+1:]...)
				pi--
				progress = true
				exp, err := expandFns[o](expDepth[o])
				if err == nil && exp != nil {
					err = ValidateExpansion(names[o], expDepth[o], exp, func(nm string) bool {
						_, ok := index[nm]
						return ok
					})
				}
				if err != nil {
					runErr = fmt.Errorf("rts: expanding %s: %w", names[o], err)
					return
				}
				if exp == nil {
					// Base case: no sub-graph; the join runs directly.
					expLeft[o] = 0
					continue
				}
				suborder, err := exp.Graph.TopoOrder()
				if err != nil {
					runErr = fmt.Errorf("rts: expanding %s: %w", names[o], err)
					return
				}
				base := len(specs)
				before := totalOutstanding
				for _, nd := range suborder {
					if err := addOp(nd, exp.Bind(nd.Name), expDepth[o]+1, o); err != nil {
						runErr = err
						return
					}
				}
				wire(exp.Graph)
				if err := place(exp.Graph); err != nil {
					runErr = err
					return
				}
				if rec != nil {
					for i := base; i < len(specs); i++ {
						rec.AddOp(names[i])
					}
				}
				expLeft[o] = totalOutstanding - before
			}
		}
	}

	// Fault state. live tracks the surviving processor count; chunk
	// sizing and budget shares are computed against it so scheduling
	// adapts to the machine that is actually left. With fx == nil it
	// stays p and the engine behaves identically to a fault-free build.
	live := p
	dead := make([]bool, p)
	slowOn := make([]bool, p)
	slowF := 1.0
	// chunkBudget is the fair per-dispatch time share of an operator's
	// remaining work: the hint sum of its unscheduled tasks (exact in
	// steady state) divided by the machine size. Early task samples are
	// biased toward the expensive queue fronts, so the observed mean is
	// only a fallback.
	chunkBudget := func(o int) float64 {
		rate := specs[o].Mu
		if m := tstats[o].Global.Mean(); rate <= 0 && m > 0 {
			rate = m
		}
		sum := 0.0
		for v := range queues[o] {
			sum += queues[o][v].EstRemaining(rate)
		}
		return sum / float64(live)
	}

	var idle []int
	var next func(gproc int)
	wake := func() {
		w := idle
		idle = nil
		for _, gp := range w {
			sim.AfterFn(0, next, gp)
		}
	}
	tokenCost := 0.2 * cfg.MsgOverhead

	// Each processor has at most one chunk in flight, so its completion
	// context lives in a per-processor slot instead of a per-event
	// closure — the allocation-free AfterFn scheduling path.
	type pendChunk struct {
		o, k         int
		start, total float64
		tasks        []int
	}
	pend := make([]pendChunk, p)
	chunkDone := func(gp int) {
		pc := pend[gp]
		doneTasks[pc.o] += pc.k
		for _, i := range pc.tasks {
			doneMark[pc.o][i] = true
		}
		oldPfx := donePfx[pc.o]
		for pfx := oldPfx; pfx < len(doneMark[pc.o]) && doneMark[pc.o][pfx]; pfx++ {
			donePfx[pc.o] = pfx + 1
		}
		if rec != nil && donePfx[pc.o] != oldPfx {
			rec.Gate(gp, pc.o, oldPfx, donePfx[pc.o], sim.Now())
		}
		totalOutstanding -= pc.k
		if j := ownQueue(gp, pc.o); j >= 0 {
			done[pc.o][j] += pc.k
			spent[pc.o][j] += pc.total
		}
		// Cross-level accounting: a sub-operator's completed tasks drain
		// its expander's expLeft; at 0 the parent's join gate opens.
		if par := expParent[pc.o]; par >= 0 {
			expLeft[par] -= pc.k
		}
		// Fully-completed predecessors may make expansions ready, and
		// progress may open successors' gates.
		maybeExpand()
		wake()
		next(gp)
	}
	execChunk := func(gp, o int, tasks []int, transferCost float64, stolen bool) {
		total := transferCost
		for _, i := range tasks {
			// A slow fault scales only the observed cost, never the
			// computed values.
			t := specs[o].Op.Time(i) * slowF
			tstats[o].Observe(i, t)
			total += t
		}
		total += cfg.SchedOverhead + tokenCost
		res.Messages++
		res.Busy[gp] += total
		res.Chunks++
		k := len(tasks)
		unsched[o] -= k
		if rec != nil {
			rec.Chunk(gp, o, tasks[0], k, sim.Now(), sim.Now()+total, stolen)
		}
		pend[gp] = pendChunk{o: o, k: k, start: sim.Now(), total: total, tasks: tasks}
		sim.AfterFn(total, chunkDone, gp)
	}

	// tryDispatch attempts to hand processor gp a chunk of op o,
	// stealing from the most loaded owner when gp's own queue (if it
	// belongs to o) is empty. Chunks respect the op's gate as a task
	// -index prefix: a queue only contributes tasks whose indices the
	// gate has enabled, never an equivalent count of later tasks.
	tryDispatch := func(gp, o int) bool {
		limit := gate(o)
		open := limit - dispatched(o)
		if open <= 0 || unsched[o] <= 0 {
			return false
		}
		pol := policies[o]
		// Chunk sizes are computed against the whole machine: any
		// processor may execute any executable operator, so the
		// effective worker pool of a hot operator is p, not its
		// allocation.
		if j := ownQueue(gp, o); j >= 0 {
			q := &queues[o][j]
			if en := q.EnabledPrefix(limit); en > 0 {
				k := pol.NextChunk(unsched[o], live, tstats[o])
				if t, ok := pol.(*sched.Taper); ok {
					k = clampInt(t.ScaleChunk(k, q.NextTask(), tstats[o]), unsched[o])
				}
				if rec != nil {
					rec.Taper(gp, o, unsched[o], k, int(tstats[o].Global.N()),
						tstats[o].Global.Mean(), tstats[o].Global.StdDev(), sim.Now())
				}
				if k > open {
					k = open
				}
				if k > en {
					k = en
				}
				// The chunk is budgeted in time, not tasks — the
				// per-task-grained form of the paper's s = μg/μc chunk
				// scaling — so a chunk never collects several expensive
				// tasks whose combined time exceeds a fair share.
				tasks := q.TakeBudget(k, chunkBudget(o), specs[o].Op.Hint)
				execChunk(gp, o, tasks, 0, false)
				return true
			}
		}
		// Steal from the most loaded owner of o.
		globalMean := tstats[o].Global.Mean()
		victim := -1
		victimEn := 0
		bestTime := 0.0
		opRemaining := 0.0
		for v := range queues[o] {
			if queues[o][v].Remaining() == 0 {
				continue
			}
			rate := globalMean
			if done[o][v] > 0 && spent[o][v]/float64(done[o][v]) > rate {
				rate = spent[o][v] / float64(done[o][v])
			}
			est := queues[o][v].EstRemaining(rate)
			opRemaining += est
			// A queue whose front task sits beyond the gate has nothing
			// stealable right now, however much work it holds.
			en := queues[o][v].EnabledPrefix(limit)
			if en == 0 {
				continue
			}
			// Any nonempty queue qualifies: before the first sample the
			// time estimate is zero for every queue, and a strict
			// greater-than would leave an untouched operator unstealable
			// forever.
			if victim < 0 || est > bestTime {
				bestTime = est
				victim = v
				victimEn = en
			}
		}
		if victim < 0 {
			return false
		}
		k := pol.NextChunk(unsched[o], live, tstats[o])
		if rec != nil {
			rec.Taper(gp, o, unsched[o], k, int(tstats[o].Global.N()),
				tstats[o].Global.Mean(), tstats[o].Global.StdDev(), sim.Now())
		}
		if k > open {
			k = open
		}
		if k > victimEn {
			k = victimEn
		}
		// A thief takes at most a fair per-processor share of the
		// operator's remaining work, and never more than half the
		// victim's queue.
		budget := opRemaining / float64(live)
		if half := queues[o][victim].EstRemaining(globalMean) / 2; half < budget {
			budget = half
		}
		tasks := queues[o][victim].TakeBudget(k, budget, specs[o].Op.Hint)
		if rec != nil {
			gv := procBase[o] + victim
			rec.Steal(gp, gv, o, tasks[0], len(tasks), sim.Now())
			if gv < p && dead[gv] {
				// Re-assignment from a crashed owner is the recovery path:
				// its queued tasks are re-issued to a survivor.
				rec.Retry(gp, gv, o, tasks[0], len(tasks), sim.Now())
			}
		}
		res.Steals++
		res.Messages += 3
		cost := 2*cfg.MsgTime(gp, procBase[o], 16) +
			cfg.MsgTime(procBase[o]+victim, gp, int64(len(tasks))*specs[o].Op.Bytes+32)
		execChunk(gp, o, tasks, cost, true)
		return true
	}

	// reallocSurvivors re-runs the allocation algorithm over the
	// surviving processor set using the statistics measured so far, so
	// the trace carries finishing-time estimates for the machine that is
	// actually left (reallocation-on-loss).
	reallocSurvivors := func(gp int) {
		if rec == nil {
			return
		}
		rec.Realloc(gp, live, sim.Now())
		var rspecs []OpSpec
		var rnames []string
		for o := range specs {
			if unsched[o] <= 0 {
				continue
			}
			s := specs[o]
			if m := tstats[o].Global.Mean(); m > 0 {
				s.Mu = m
				s.Sigma = tstats[o].Global.StdDev()
			}
			rspecs = append(rspecs, s)
			rnames = append(rnames, names[o])
		}
		if len(rspecs) > 0 {
			ReallocateOnLossOmega(cfg, rspecs, live, omega, rec, rnames...)
		}
	}

	next = func(gp int) {
		if totalOutstanding <= 0 || runErr != nil {
			return
		}
		if ctx != nil && ctx.Err() != nil {
			// Canceled: this processor stops taking work; once every
			// in-flight chunk drains the event loop empties out.
			return
		}
		slowF = 1.0
		if fx != nil {
			d := fx.Begin(gp)
			if d.Crash {
				if !dead[gp] {
					dead[gp] = true
					live--
					if rec != nil {
						rec.Fault(gp, gp, int(fault.Crash), sim.Now())
					}
					reallocSurvivors(gp)
				}
				// The dead processor's queued tasks stay stealable; idle
				// survivors must re-scan now that the pool shrank.
				wake()
				return
			}
			if d.Stall > 0 {
				if rec != nil {
					rec.Fault(gp, gp, int(fault.Stall), sim.Now())
				}
				sim.AfterFn(d.Stall, next, gp)
				return
			}
			if d.Slow > 0 {
				slowF = d.Slow
				if !slowOn[gp] {
					slowOn[gp] = true
					if rec != nil {
						rec.Fault(gp, gp, int(fault.Slow), sim.Now())
					}
				}
			}
		}
		// Own operators first (locality): in topological order, the
		// first executable operator whose queue this processor owns.
		for o := range specs {
			if j := ownQueue(gp, o); j >= 0 && queues[o][j].Remaining() > 0 {
				if gate(o)-dispatched(o) > 0 && tryDispatch(gp, o) {
					return
				}
			}
		}
		bestOp, bestWork := -1, 0.0
		for o := range specs {
			if unsched[o] <= 0 || gate(o)-dispatched(o) <= 0 {
				continue
			}
			work := float64(unsched[o]) * tstats[o].Global.Mean()
			if tstats[o].Global.N() == 0 {
				work = float64(unsched[o]) * specs[o].Mu
			}
			if work > bestWork {
				bestWork = work
				bestOp = o
			}
		}
		if bestOp >= 0 {
			if tryDispatch(gp, bestOp) {
				return
			}
			// The best operator can refuse the dispatch even with its
			// gate open: hinted queues are expensive-first, not index-
			// ordered, so every gate-enabled task may sit behind a
			// blocked queue front. Parking here would stall the run —
			// nothing wakes an idle processor until some chunk
			// completes, and with one processor there is no other chunk
			// — so fall back to any other executable operator.
			for o := range specs {
				if o == bestOp || unsched[o] <= 0 || gate(o)-dispatched(o) <= 0 {
					continue
				}
				if tryDispatch(gp, o) {
					return
				}
			}
		}
		idle = append(idle, gp)
	}

	// Expandable sources (no predecessors) materialize before the
	// processors start.
	maybeExpand()
	if runErr != nil {
		return trace.Result{}, runErr
	}
	for gp := 0; gp < p; gp++ {
		sim.AfterFn(0, next, gp)
	}
	sim.Run()
	if runErr != nil {
		return trace.Result{}, runErr
	}
	if totalOutstanding != 0 {
		if ctx != nil && ctx.Err() != nil {
			return trace.Result{}, CancelError("rts", ctx)
		}
		return trace.Result{}, fmt.Errorf("rts: DAG execution stalled with %d tasks outstanding", totalOutstanding)
	}
	res.Makespan = sim.Now() + cfg.BroadcastTime(p, 8)
	return res, nil
}
