package rts

import (
	"strings"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
)

func chainGraph(t *testing.T, names ...string) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("chain")
	for _, n := range names {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(names); i++ {
		g.AddEdge(&delirium.Edge{From: names[i-1], To: names[i], Bytes: 8, PerTask: true})
	}
	return g
}

func TestRunGraphModes(t *testing.T) {
	g := chainGraph(t, "a", "b", "c")
	bind := func(string) OpSpec { return irregularSpec(1024, 3) }
	cfg := machine.DefaultConfig(64)
	results := map[Mode]float64{}
	for _, mode := range []Mode{ModeStatic, ModeTaper, ModeSplit} {
		r, err := RunGraph(cfg, g, bind, RunOpts{Processors: 64, Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.Makespan <= 0 || r.SeqTime <= 0 {
			t.Fatalf("%v: empty result", mode)
		}
		if !strings.Contains(r.Name, mode.String()) {
			t.Fatalf("%v: name = %q", mode, r.Name)
		}
		results[mode] = r.Makespan
	}
	// Adaptive scheduling beats static on irregular work; even on a
	// pure chain the barrier-free execution must not lose to the
	// barrier one by more than the allocation noise.
	if results[ModeTaper] >= results[ModeStatic] {
		t.Fatalf("TAPER (%v) lost to static (%v)", results[ModeTaper], results[ModeStatic])
	}
	if results[ModeSplit] > 1.1*results[ModeTaper] {
		t.Fatalf("split (%v) much worse than TAPER (%v) on a chain",
			results[ModeSplit], results[ModeTaper])
	}
}

func TestRunGraphEdgeCostsCharged(t *testing.T) {
	// The same ops with and without a connecting edge: the barrier
	// modes charge edge transfer costs.
	with := chainGraph(t, "a", "b")
	without := delirium.NewGraph("none")
	_ = without.AddNode(&delirium.Node{Name: "a"})
	_ = without.AddNode(&delirium.Node{Name: "b"})

	bind := func(string) OpSpec { return uniformSpec(512, 1) }
	cfg := machine.DefaultConfig(16)
	r1, err := RunGraph(cfg, with, bind, RunOpts{Processors: 16, Mode: ModeTaper})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunGraph(cfg, without, bind, RunOpts{Processors: 16, Mode: ModeTaper})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan <= r2.Makespan {
		t.Fatalf("edge transfer not charged: %v vs %v", r1.Makespan, r2.Makespan)
	}
}

func TestRunGraphInvalid(t *testing.T) {
	g := delirium.NewGraph("bad")
	_ = g.AddNode(&delirium.Node{Name: "a"})
	_ = g.AddNode(&delirium.Node{Name: "b"})
	g.AddEdge(&delirium.Edge{From: "a", To: "b"})
	g.AddEdge(&delirium.Edge{From: "b", To: "a"})
	for _, mode := range []Mode{ModeStatic, ModeTaper, ModeSplit} {
		if _, err := RunGraph(machine.DefaultConfig(4), g,
			func(string) OpSpec { return uniformSpec(8, 1) },
			RunOpts{Processors: 4, Mode: mode}); err == nil {
			t.Fatalf("%v: cyclic graph accepted", mode)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if ModeStatic.String() != "static" || ModeTaper.String() != "TAPER" ||
		ModeSplit.String() != "TAPER+split" {
		t.Fatal("mode strings changed")
	}
	if Mode(99).String() != "mode(99)" {
		t.Fatal("unknown mode string")
	}
}
