package rts

import (
	"strings"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/sched"
)

func expTestGraph(t *testing.T) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("experr")
	if err := g.AddNode(&delirium.Node{Name: "a", Kind: delirium.Par, Tasks: "4"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&delirium.Node{Name: "r", Kind: delirium.Exp, Tasks: "1", Rule: "rec"}); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "r"})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func plainSpec(name string, n int) OpSpec {
	return OpSpec{Op: sched.Op{Name: name, N: n, Time: func(int) float64 { return 1 }}, Mu: 1}
}

// recSpec is an expansion rule with no base case: every level
// materializes one more expandable child. Running it must trip
// MaxExpandDepth instead of diverging.
func recSpec(name string) OpSpec {
	spec := plainSpec(name, 1)
	spec.Expand = func(depth int) (*Expansion, error) {
		sub := delirium.NewGraph(name)
		sub.AddNode(&delirium.Node{Name: name + "/x", Kind: delirium.Exp, Tasks: "1", Rule: "rec"})
		return &Expansion{Graph: sub, Bind: func(nm string) OpSpec { return recSpec(nm) }}, nil
	}
	return spec
}

// TestExpandDepthBoundSim: an expansion rule that never bottoms out
// must fail the run with the depth-bound error on both simulator
// execution paths, not hang or recurse unboundedly.
func TestExpandDepthBoundSim(t *testing.T) {
	g := expTestGraph(t)
	bind := func(name string) OpSpec {
		if name == "r" {
			return recSpec(name)
		}
		return plainSpec(name, 4)
	}
	for _, mode := range []Mode{ModeSplit, ModeStatic} {
		be := NewSimBackend(machine.DefaultConfig(2))
		_, err := be.Run(g, BindClosure(bind), RunOpts{Processors: 2, Mode: mode})
		if err == nil || !strings.Contains(err.Error(), "depth bound") {
			t.Fatalf("mode %v: error = %v, want one mentioning the depth bound", mode, err)
		}
	}
}

// TestExpandRedeclaredOperator: an expansion whose sub-graph reuses an
// already scheduled operator name must be rejected before splicing.
func TestExpandRedeclaredOperator(t *testing.T) {
	g := expTestGraph(t)
	bind := func(name string) OpSpec {
		if name != "r" {
			return plainSpec(name, 4)
		}
		spec := plainSpec(name, 1)
		spec.Expand = func(depth int) (*Expansion, error) {
			sub := delirium.NewGraph("r")
			sub.AddNode(&delirium.Node{Name: "a", Kind: delirium.Par, Tasks: "4"})
			return &Expansion{Graph: sub, Bind: func(nm string) OpSpec { return plainSpec(nm, 4) }}, nil
		}
		return spec
	}
	for _, mode := range []Mode{ModeSplit, ModeStatic} {
		be := NewSimBackend(machine.DefaultConfig(2))
		_, err := be.Run(g, BindClosure(bind), RunOpts{Processors: 2, Mode: mode})
		if err == nil || !strings.Contains(err.Error(), "redeclares") {
			t.Fatalf("mode %v: error = %v, want a redeclaration error", mode, err)
		}
	}
}

// TestValidateExpansionChecks covers the engine-independent rejection
// table directly: each malformed expansion shape maps to its error.
func TestValidateExpansionChecks(t *testing.T) {
	goodBind := func(nm string) OpSpec { return plainSpec(nm, 2) }
	goodGraph := func() *delirium.Graph {
		sub := delirium.NewGraph("x")
		sub.AddNode(&delirium.Node{Name: "x/0", Kind: delirium.Par, Tasks: "2"})
		return sub
	}
	taken := func(name string) bool { return name == "dup" }

	cases := []struct {
		name  string
		depth int
		exp   *Expansion
		want  string
	}{
		{"depth-at-bound", MaxExpandDepth, &Expansion{Graph: goodGraph(), Bind: goodBind}, "depth bound"},
		{"nil-graph", 0, &Expansion{Bind: goodBind}, "no graph"},
		{"empty-graph", 0, &Expansion{Graph: delirium.NewGraph("e"), Bind: goodBind}, "empty"},
		{"nil-binder", 0, &Expansion{Graph: goodGraph()}, "no binder"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateExpansion("x", c.depth, c.exp, taken)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want one containing %q", err, c.want)
			}
		})
	}

	t.Run("taken-name", func(t *testing.T) {
		sub := delirium.NewGraph("x")
		sub.AddNode(&delirium.Node{Name: "dup", Kind: delirium.Par, Tasks: "2"})
		err := ValidateExpansion("x", 0, &Expansion{Graph: sub, Bind: goodBind}, taken)
		if err == nil || !strings.Contains(err.Error(), "redeclares") {
			t.Fatalf("error = %v, want a redeclaration error", err)
		}
	})

	t.Run("valid", func(t *testing.T) {
		if err := ValidateExpansion("x", 3, &Expansion{Graph: goodGraph(), Bind: goodBind}, taken); err != nil {
			t.Fatalf("valid expansion rejected: %v", err)
		}
	})
}

// TestJoinSpecNormalization: JoinSpec must force the single join task
// and install a zero-cost body only when the binding has none.
func TestJoinSpecNormalization(t *testing.T) {
	got := JoinSpec(plainSpec("x", 9))
	if got.Op.N != 1 {
		t.Fatalf("join N = %d, want 1", got.Op.N)
	}
	if got.Op.Time(0) != 1 {
		t.Fatal("JoinSpec replaced a supplied join body")
	}
	bare := JoinSpec(OpSpec{Op: sched.Op{Name: "y", N: 3}, Mu: 1})
	if bare.Op.Time == nil || bare.Op.Time(0) != 0 {
		t.Fatal("JoinSpec did not install a zero-cost body for a bare binding")
	}
}
