package rts

import (
	"context"
	"errors"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/sched"
)

func cancelTestGraph(t *testing.T) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("cancel")
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b", Bytes: 8})
	return g
}

// TestSimRunPreCanceledContext checks that every simulator mode
// refuses an already-canceled context with the distinguishable error.
func TestSimRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := cancelTestGraph(t)
	bind := func(name string) OpSpec {
		return OpSpec{Op: sched.Op{Name: name, N: 10, Time: func(i int) float64 { return 1 }}, Mu: 1}
	}
	be := NewSimBackend(machine.DefaultConfig(4))
	for _, mode := range []Mode{ModeStatic, ModeTaper, ModeSplit} {
		_, err := be.Run(g, BindClosure(bind), RunOpts{Mode: mode, Ctx: ctx})
		if !IsCanceled(err) {
			t.Errorf("%v: error = %v, want one wrapping ErrCanceled", mode, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: error = %v, want it to also wrap context.Canceled", mode, err)
		}
	}
}

// TestSimRunCancelMidRun cancels the context from inside the first
// operator's task bodies: the barriered modes must abandon the run at
// the next operator boundary, the dataflow mode at the next dispatch.
// The simulator is single-threaded, so this is deterministic.
func TestSimRunCancelMidRun(t *testing.T) {
	g := cancelTestGraph(t)
	be := NewSimBackend(machine.DefaultConfig(4))
	for _, mode := range []Mode{ModeStatic, ModeTaper, ModeSplit} {
		ctx, cancel := context.WithCancel(context.Background())
		bind := func(name string) OpSpec {
			return OpSpec{Op: sched.Op{Name: name, N: 100, Time: func(i int) float64 {
				cancel()
				return 1
			}}, Mu: 1}
		}
		_, err := be.Run(g, BindClosure(bind), RunOpts{Mode: mode, Ctx: ctx})
		cancel()
		if !IsCanceled(err) {
			t.Errorf("%v: error = %v, want one wrapping ErrCanceled", mode, err)
		}
	}
}

// TestSimRunNilContext checks the default remains uncancelable and
// unchanged: a nil Ctx runs to completion.
func TestSimRunNilContext(t *testing.T) {
	g := cancelTestGraph(t)
	bind := func(name string) OpSpec {
		return OpSpec{Op: sched.Op{Name: name, N: 10, Time: func(i int) float64 { return 1 }}, Mu: 1}
	}
	be := NewSimBackend(machine.DefaultConfig(4))
	for _, mode := range []Mode{ModeStatic, ModeTaper, ModeSplit} {
		if _, err := be.Run(g, BindClosure(bind), RunOpts{Mode: mode}); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// TestIsCanceled pins the helper's contract.
func TestIsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !IsCanceled(CancelError("native", ctx)) {
		t.Error("IsCanceled(CancelError(...)) = false")
	}
	if !IsCanceled(CancelError("rts", nil)) {
		t.Error("IsCanceled(CancelError with nil ctx) = false")
	}
	if IsCanceled(errors.New("boom")) {
		t.Error("IsCanceled(unrelated error) = true")
	}
	if IsCanceled(nil) {
		t.Error("IsCanceled(nil) = true")
	}
}
