package rts

import (
	"fmt"

	"orchestra/internal/machine"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
)

// ExecuteConcurrent co-schedules several parallel operations on one
// machine. Each operation receives the processor subset the allocation
// chose; tasks start on their owners (owner-computes, with the
// runtime's cost-refined decomposition when hints are warm); a
// processor whose operation has no unscheduled work left is
// re-assigned chunks from the most loaded processor — first within its
// own operation, then from any concurrent operation. This is the
// runtime behaviour split enables: "a runtime scheduler can use the
// additional parallelism of one sub-computation to compensate for
// communication constraints or load imbalance in the other."
func ExecuteConcurrent(cfg machine.Config, specs []OpSpec, alloc []int, factory sched.Factory) trace.Result {
	if len(specs) != len(alloc) {
		panic("rts: specs/alloc length mismatch")
	}
	totalP := 0
	for _, a := range alloc {
		totalP += a
	}
	sim := machine.NewSim(cfg)
	res := trace.Result{Name: "concurrent", Processors: totalP, Busy: make([]float64, totalP)}

	nOps := len(specs)
	queues := make([][]sched.TaskQueue, nOps) // one queue per owning processor
	remaining := make([]int, nOps)            // unscheduled tasks per op
	tstats := make([]*sched.TaskStats, nOps)
	policies := make([]sched.Policy, nOps)
	opOfProc := make([]int, totalP) // which op a processor belongs to
	localIdx := make([]int, totalP) // processor's index within its op
	procBase := make([]int, nOps)   // first global proc id of each op

	proc := 0
	for o, spec := range specs {
		res.SeqTime += spec.Op.TotalTime()
		p := alloc[o]
		if p < 1 && spec.Op.N > 0 {
			panic(fmt.Sprintf("rts: op %d has %d tasks but no processors", o, spec.Op.N))
		}
		procBase[o] = proc
		queues[o] = sched.Decompose(spec.Op, p)
		remaining[o] = spec.Op.N
		tstats[o] = sched.NewTaskStats(spec.Op.N)
		policies[o] = factory()
		for j := 0; j < p; j++ {
			opOfProc[proc] = o
			localIdx[proc] = j
			proc++
		}
	}

	finish := make([]float64, totalP)
	tokenCost := 0.2 * cfg.MsgOverhead
	// Observed per-processor progress (token information).
	done := make([][]int, nOps)
	spent := make([][]float64, nOps)
	for o := range specs {
		done[o] = make([]int, len(queues[o]))
		spent[o] = make([]float64, len(queues[o]))
	}

	anyRemaining := func() bool {
		for _, r := range remaining {
			if r > 0 {
				return true
			}
		}
		return false
	}

	var next func(g int)
	// Per-processor pending-chunk context: a processor has at most one
	// chunk in flight, so completion state lives in these slots instead
	// of a per-event closure (the allocation-free AfterFn path).
	pendOp := make([]int, totalP)
	pendK := make([]int, totalP)
	pendTotal := make([]float64, totalP)
	chunkDone := func(g int) {
		o := pendOp[g]
		if o == opOfProc[g] {
			done[o][localIdx[g]] += pendK[g]
			spent[o][localIdx[g]] += pendTotal[g]
		}
		next(g)
	}
	execChunk := func(g, o int, tasks []int, transferCost float64) {
		spec := specs[o]
		total := transferCost
		for _, i := range tasks {
			t := spec.Op.Time(i)
			tstats[o].Observe(i, t)
			total += t
		}
		total += cfg.SchedOverhead + tokenCost
		res.Messages++
		res.Busy[g] += total
		remaining[o] -= len(tasks)
		res.Chunks++
		pendOp[g], pendK[g], pendTotal[g] = o, len(tasks), total
		sim.AfterFn(total, chunkDone, g)
	}
	// steal finds the most loaded processor of op o (by estimated
	// remaining time) and re-assigns a chunk to global processor g. It
	// reports false when op o has no unscheduled work.
	steal := func(g, o int) bool {
		globalMean := tstats[o].Global.Mean()
		victim := -1
		bestTime := 0.0
		for v := range queues[o] {
			if queues[o][v].Remaining() == 0 {
				continue
			}
			rate := globalMean
			if done[o][v] > 0 && spent[o][v]/float64(done[o][v]) > rate {
				rate = spent[o][v] / float64(done[o][v])
			}
			if est := queues[o][v].EstRemaining(rate); est > bestTime {
				bestTime = est
				victim = v
			}
		}
		if victim < 0 {
			return false
		}
		pol := policies[o]
		k := pol.NextChunk(remaining[o], totalP, tstats[o])
		budget := queues[o][victim].EstRemaining(globalMean) / 2
		tasks := queues[o][victim].TakeBudget(k, budget, specs[o].Op.Hint)
		res.Steals++
		res.Messages += 3
		cost := 2*cfg.MsgTime(g, procBase[o], 16) +
			cfg.MsgTime(procBase[o]+victim, g, int64(len(tasks))*specs[o].Op.Bytes+32)
		execChunk(g, o, tasks, cost)
		return true
	}
	next = func(g int) {
		o := opOfProc[g]
		j := localIdx[g]
		// Own queue first.
		if q := &queues[o][j]; q.Remaining() > 0 {
			pol := policies[o]
			k := pol.NextChunk(remaining[o], len(queues[o]), tstats[o])
			if t, ok := pol.(*sched.Taper); ok {
				k = clampInt(t.ScaleChunk(k, q.NextTask(), tstats[o]), remaining[o])
			}
			execChunk(g, o, q.Take(k, specs[o].Op.Hint), 0)
			return
		}
		// Own op, other processors.
		if remaining[o] > 0 && steal(g, o) {
			return
		}
		// Any concurrent op with work left.
		for oo := range specs {
			if oo != o && remaining[oo] > 0 && steal(g, oo) {
				return
			}
		}
		if !anyRemaining() {
			finish[g] = sim.Now()
			return
		}
		// Work exists but is all in flight; this processor is done.
		finish[g] = sim.Now()
	}

	for g := 0; g < totalP; g++ {
		sim.AfterFn(0, next, g)
	}
	sim.Run()

	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	res.Makespan = max + cfg.BroadcastTime(totalP, 8)
	res.Name = fmt.Sprintf("concurrent-%d-ops", nOps)
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(k, max int) int {
	if k < 1 {
		return 1
	}
	if k > max {
		return max
	}
	return k
}
