package rts

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"orchestra/internal/delirium"
)

// This file is the kernel registry: the named, serializable successor
// to the closure-only Binder. A Binder is a Go closure and therefore
// cannot cross a process boundary; the distributed backend forks
// worker processes that must rebuild the exact same executable kernels
// from data alone. The redesign splits a binding into two halves:
//
//   - Binding: pure data — a default kernel name, an optional
//     per-operator override table (graph op → kernel name), and
//     string-keyed parameters. A Binding marshals to JSON and ships to
//     a worker process unchanged.
//   - KernelFunc: code — a named constructor registered once per
//     process (typically from an init function) that turns (graph,
//     params) into the executable OpSpec of one operator.
//
// Bind joins the halves: it resolves every graph node through the
// registry eagerly and returns a Bound, the value Backend.Run now
// consumes. Both sides of a socket resolve the same Binding against
// the same registry (the dist backend re-executes its own binary, so
// the registries are identical by construction), which is what makes
// "ship the name, not the closure" sound.

// KernelParams is the serializable parameter set of a Binding: string
// keys to string values, with typed accessors. Strings keep the wire
// format trivial and diff-friendly; kernels parse what they need and
// fall back to defaults for absent keys.
type KernelParams map[string]string

// Int returns the integer value of key, or def when absent/invalid.
func (p KernelParams) Int(key string, def int) int {
	if v, ok := p[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// Uint64 returns the uint64 value of key, or def when absent/invalid.
func (p KernelParams) Uint64(key string, def uint64) uint64 {
	if v, ok := p[key]; ok {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// Float returns the float value of key, or def when absent/invalid.
func (p KernelParams) Float(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// Str returns the string value of key, or def when absent.
func (p KernelParams) Str(key, def string) string {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// SetInt stores an integer parameter.
func (p KernelParams) SetInt(key string, v int) { p[key] = strconv.Itoa(v) }

// SetUint64 stores a uint64 parameter.
func (p KernelParams) SetUint64(key string, v uint64) { p[key] = strconv.FormatUint(v, 10) }

// SetFloat stores a float parameter.
func (p KernelParams) SetFloat(key string, v float64) {
	p[key] = strconv.FormatFloat(v, 'g', -1, 64)
}

// Binding names a run's kernels in serializable form: every graph op
// resolves through Table (falling back to Kernel) to a registered
// kernel name, instantiated with Params. The zero Binding is invalid;
// a Binding with only Kernel set binds every operator to that kernel.
type Binding struct {
	// Kernel is the default kernel name for every operator.
	Kernel string `json:"kernel"`
	// Table overrides the kernel per graph op (op name → kernel name).
	Table map[string]string `json:"table,omitempty"`
	// Params parameterizes the kernels (problem size, seed, work).
	Params KernelParams `json:"params,omitempty"`
}

// NamedBinding builds a Binding of one kernel for every operator.
func NamedBinding(kernel string, params KernelParams) Binding {
	return Binding{Kernel: kernel, Params: params}
}

// kernelFor resolves the kernel name for one op.
func (b Binding) kernelFor(op string) string {
	if k, ok := b.Table[op]; ok {
		return k
	}
	return b.Kernel
}

// BindEnv is the instantiation context a run's kernels share: the
// graph, the binding parameters, and a memo space for state that spans
// operators (a kernel family that exchanges data through a common
// memory image builds that image once under a memo key). One BindEnv
// belongs to exactly one Bound and hence one run — re-binding starts
// from fresh state, which is what lets every execution begin from
// zeroed arrays.
type BindEnv struct {
	Graph  *delirium.Graph
	Params KernelParams

	mu     sync.Mutex
	memo   map[string]any
	digest func() string
}

// Memo returns the value under key, building it on first use. Kernel
// constructors use it for whole-graph shared state. The build function
// runs without the environment lock held, so it may call SetDigest;
// Bind resolves operators from one goroutine, which is what bounds the
// build to once per environment.
func (e *BindEnv) Memo(key string, build func() (any, error)) (any, error) {
	e.mu.Lock()
	if v, ok := e.memo[key]; ok {
		e.mu.Unlock()
		return v, nil
	}
	e.mu.Unlock()
	v, err := build()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if prior, ok := e.memo[key]; ok {
		// A concurrent caller raced the build; keep the first value so
		// every operator shares one state.
		return prior, nil
	}
	if e.memo == nil {
		e.memo = map[string]any{}
	}
	e.memo[key] = v
	return v, nil
}

// SetDigest registers the run's result-digest function: a fingerprint
// of the kernels' final memory image, comparable bitwise across
// backends. Kernels whose tasks produce durable data call it from
// their constructor.
func (e *BindEnv) SetDigest(fn func() string) {
	e.mu.Lock()
	e.digest = fn
	e.mu.Unlock()
}

// Digest evaluates the registered digest function. ok is false when
// the bound kernels produce no digestible state (synthetic timing
// kernels).
func (e *BindEnv) Digest() (d string, ok bool) {
	e.mu.Lock()
	fn := e.digest
	e.mu.Unlock()
	if fn == nil {
		return "", false
	}
	return fn(), true
}

// KernelFunc constructs the executable OpSpec of one graph operator.
// The environment carries the graph, the binding parameters, and the
// run's shared state; op is the graph node name. Constructors are
// called once per operator at Bind time, in topological order.
type KernelFunc func(env *BindEnv, op string) (OpSpec, error)

// KernelRegistry maps kernel names to constructors. Registration
// happens at package init time (each kernel family registers itself),
// resolution at Bind time; both sides of a dist socket see the same
// registry because worker processes re-execute the same binary.
type KernelRegistry struct {
	mu sync.RWMutex
	m  map[string]KernelFunc
}

// NewKernelRegistry returns an empty registry.
func NewKernelRegistry() *KernelRegistry {
	return &KernelRegistry{m: map[string]KernelFunc{}}
}

// Register adds a named kernel constructor. Empty names and duplicate
// registrations are errors — a duplicate almost always means two
// packages fighting over a name, which would make Binding resolution
// binary-order dependent.
func (r *KernelRegistry) Register(name string, fn KernelFunc) error {
	if name == "" {
		return fmt.Errorf("rts: kernel registration with empty name")
	}
	if fn == nil {
		return fmt.Errorf("rts: kernel %q registered with nil constructor", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("rts: kernel %q registered twice", name)
	}
	r.m[name] = fn
	return nil
}

// MustRegister is Register for init functions: it panics on error.
func (r *KernelRegistry) MustRegister(name string, fn KernelFunc) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Resolve returns the constructor registered under name.
func (r *KernelRegistry) Resolve(name string) (KernelFunc, error) {
	r.mu.RLock()
	fn, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rts: unknown kernel %q (registered: %v)", name, r.Names())
	}
	return fn, nil
}

// Names lists the registered kernel names, sorted.
func (r *KernelRegistry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Kernels is the process-wide kernel registry every kernel family
// registers into and Bind resolves against.
var Kernels = NewKernelRegistry()

// Bound is an instantiated binding: the serializable Binding (what can
// cross a process boundary) plus the resolved in-process kernels (what
// an engine executes). Backends consume Bound — shared-memory backends
// use the resolved specs, the dist backend ships the Binding and lets
// each worker re-resolve it.
type Bound struct {
	// Binding is the name-level form. Zero (empty Kernel) for closure
	// bindings, which cannot be shipped.
	Binding Binding
	// Env is the kernels' shared instantiation context; nil for
	// closure bindings.
	Env *BindEnv

	specs   map[string]OpSpec
	closure Binder
}

// Spec resolves one operator, exactly like the legacy Binder call.
func (b *Bound) Spec(op string) OpSpec {
	if b.closure != nil {
		return b.closure(op)
	}
	return b.specs[op]
}

// Binder adapts the Bound back to the closure form the execution
// engines consume.
func (b *Bound) Binder() Binder { return b.Spec }

// Shippable reports whether the binding can cross a process boundary:
// true for registry-named bindings, false for BindClosure values.
func (b *Bound) Shippable() bool { return b.closure == nil }

// Digest evaluates the bound kernels' result digest, if any.
func (b *Bound) Digest() (string, bool) {
	if b.Env == nil {
		return "", false
	}
	return b.Env.Digest()
}

// BindWith instantiates binding against g using registry r: every
// graph node's kernel is resolved and constructed eagerly, so unknown
// names and invalid parameters fail here rather than mid-execution.
func BindWith(r *KernelRegistry, g *delirium.Graph, binding Binding) (*Bound, error) {
	if binding.Kernel == "" && len(binding.Table) == 0 {
		return nil, fmt.Errorf("rts: empty binding (no kernel name)")
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	env := &BindEnv{Graph: g, Params: binding.Params}
	specs := make(map[string]OpSpec, len(order))
	for _, nd := range order {
		kname := binding.kernelFor(nd.Name)
		if kname == "" {
			return nil, fmt.Errorf("rts: binding names no kernel for op %q", nd.Name)
		}
		fn, err := r.Resolve(kname)
		if err != nil {
			return nil, err
		}
		spec, err := fn(env, nd.Name)
		if err != nil {
			return nil, fmt.Errorf("rts: kernel %q for op %q: %w", kname, nd.Name, err)
		}
		specs[nd.Name] = spec
	}
	return &Bound{Binding: binding, Env: env, specs: specs}, nil
}

// Bind instantiates binding against the process-wide registry.
func Bind(g *delirium.Graph, binding Binding) (*Bound, error) {
	return BindWith(Kernels, g, binding)
}

// BinderFromRegistry is the closure-adapter form of Bind: it returns
// the legacy Binder for callers that drive an execution engine
// directly (RunGraph, ExecuteDAG) rather than a Backend.
func BinderFromRegistry(r *KernelRegistry, g *delirium.Graph, binding Binding) (Binder, error) {
	b, err := BindWith(r, g, binding)
	if err != nil {
		return nil, err
	}
	return b.Binder(), nil
}

// BindClosure wraps a raw Binder closure as a Bound for engine-level
// tests and in-process harnesses. The result is not Shippable: the
// dist backend rejects it, because a closure cannot be rebuilt inside
// a worker process.
func BindClosure(bind Binder) *Bound {
	return &Bound{closure: bind}
}
