package rts

import (
	"math"

	"orchestra/internal/machine"
)

// PipeBatchCost models the cost of streaming n items of itemBytes each
// from a producer to a consumer in batches of m items: the sender pays
// one message per batch, and the consumer's start is delayed by one
// full batch (the pipeline fill):
//
//	cost(m) = (n/m)·overhead + m·itemBytes·byteCost + n·itemBytes·byteCost
//
// The last term (total transfer) is independent of m and included so
// the value is a complete transfer-time estimate.
func PipeBatchCost(cfg machine.Config, n int, itemBytes int64, m int) float64 {
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	batches := math.Ceil(float64(n) / float64(m))
	fill := float64(m) * float64(itemBytes) * cfg.ByteCost
	return batches*(cfg.MsgOverhead+cfg.HopLatency) + fill +
		float64(n)*float64(itemBytes)*cfg.ByteCost
}

// ChoosePairGranularity picks the pipelined batch size under the
// default TAPER confidence width; see ChoosePairGranularityOmega.
func ChoosePairGranularity(cfg machine.Config, prod OpSpec, pProd int, itemBytes int64) int {
	return ChoosePairGranularityOmega(cfg, prod, pProd, itemBytes, 0)
}

// ChoosePairGranularityOmega combines the communication-cost model
// with finishing-time estimates, as §4.1 describes ("combined
// finishing time estimates with runtime communication cost estimates
// to choose communication granularity"): the batch chosen by the cost
// model is additionally capped so the producer delivers many batches
// within its estimated finishing time — otherwise the consumer idles
// through the fill and the pipeline degenerates toward a barrier.
// omega is the run's TAPER confidence-width override (0 = default), so
// the producer finishing-time estimate models the scheduler actually
// running.
func ChoosePairGranularityOmega(cfg machine.Config, prod OpSpec, pProd int, itemBytes int64, omega float64) int {
	n := prod.Op.N
	m := ChooseGranularity(cfg, n, itemBytes)
	// The pipeline fill — the time to produce the first batch — must be
	// a small fraction of the producer's estimated finishing time, so
	// the consumer ramps up early: m·μ/p ≤ finish/16.
	if prod.Mu > 0 && pProd > 0 {
		finish := FinishEstimateOmega(cfg, prod, pProd, omega).Total()
		if cap := int(finish * float64(pProd) / (16 * prod.Mu)); cap >= 1 && m > cap {
			m = cap
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// ChooseGranularity picks the communication granularity (batch size)
// for a pipelined producer/consumer pair (§4.1: the runtime "combines
// finishing time estimates with runtime communication cost estimates
// to choose communication granularity for pairs of pipelined parallel
// operations"). Minimizing cost(m) gives
//
//	m* = sqrt(n·overhead / (itemBytes·byteCost)),
//
// clamped to [1, n]: small batches when per-item data is large (start
// the consumer early), large batches when message overhead dominates.
func ChooseGranularity(cfg machine.Config, n int, itemBytes int64) int {
	if n <= 1 {
		return 1
	}
	unit := float64(itemBytes) * cfg.ByteCost
	if unit <= 0 {
		return n
	}
	m := int(math.Sqrt(float64(n) * (cfg.MsgOverhead + cfg.HopLatency) / unit))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}
