package rts

import (
	"math"
	"testing"

	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/sched"
)

// TestSampleStatsExactBudget pins the sampling-budget contract: k
// samples means exactly k task evaluations (min(k, N) when the budget
// exceeds the iteration space), at distinct indices spread across the
// space. The old floor stride N/k walked up to ~2k-1 indices — N=100,
// k=3 evaluated tasks 0, 33, 66, 99 — overspending small budgets and
// biasing μ/σ toward the tail of the iteration space.
func TestSampleStatsExactBudget(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{100, 3, 3}, // the motivating case: floor stride sampled 4
		{100, 7, 7},
		{101, 10, 10},
		{10, 4, 4},
		{7, 7, 7},
		{7, 3, 3},
		{5, 2, 2},
		{3, 5, 3},  // budget larger than the space: every task once
		{1, 8, 1},  // single task
		{64, 64, 64},
		{65, 64, 64},
		{1 << 20, 128, 128},
	}
	for _, tc := range cases {
		seen := map[int]int{}
		s := OpSpec{Op: sched.Op{Name: "probe", N: tc.n, Time: func(i int) float64 {
			seen[i]++
			return float64(i)
		}}}
		s.SampleStats(tc.k)
		calls := 0
		for i, c := range seen {
			calls += c
			if c != 1 {
				t.Errorf("n=%d k=%d: task %d sampled %d times", tc.n, tc.k, i, c)
			}
			if i < 0 || i >= tc.n {
				t.Errorf("n=%d k=%d: sampled out-of-range index %d", tc.n, tc.k, i)
			}
		}
		if calls != tc.want {
			t.Errorf("n=%d k=%d: %d task evaluations, want exactly %d", tc.n, tc.k, calls, tc.want)
		}
		// μ must be the mean of exactly the sampled values.
		sum := 0.0
		for i := range seen {
			sum += float64(i)
		}
		if want := sum / float64(tc.want); math.Abs(s.Mu-want) > 1e-9 {
			t.Errorf("n=%d k=%d: Mu = %v, want %v", tc.n, tc.k, s.Mu, want)
		}
	}
}

// TestEffectiveOmegaMirrorsPolicy pins the estimator's ω resolution to
// the executed policy's (sched.Taper.NextChunk): positive overrides
// pass through, anything else resolves to √(2·ln(p+1)).
func TestEffectiveOmegaMirrorsPolicy(t *testing.T) {
	for _, p := range []int{1, 2, 8, 512} {
		def := math.Sqrt(2 * math.Log(float64(p)+1))
		if got := EffectiveOmega(p, 0); math.Abs(got-def) > 1e-12 {
			t.Errorf("p=%d: EffectiveOmega(0) = %v, want policy default %v", p, got, def)
		}
		if got := EffectiveOmega(p, -1); math.Abs(got-def) > 1e-12 {
			t.Errorf("p=%d: EffectiveOmega(-1) = %v, want policy default %v", p, got, def)
		}
		if got := EffectiveOmega(p, 3.5); got != 3.5 {
			t.Errorf("p=%d: EffectiveOmega(3.5) = %v", p, got)
		}
	}
	// An explicit default-valued override and the zero value agree, so
	// PredictChunks == PredictChunksOmega(..., 0) == the explicit form.
	if a, b := PredictChunks(4096, 16, 1.2), PredictChunksOmega(4096, 16, 1.2, EffectiveOmega(16, 0)); a != b {
		t.Errorf("PredictChunks %d != explicit-default PredictChunksOmega %d", a, b)
	}
}

// TestPredictChunksTracksOverriddenOmega is the estimator-drift
// regression test: under an -omega override the executed TAPER policy
// changes its chunk sizes, and the ω-aware prediction must track the
// executed chunk count while the stale default-ω prediction does not.
func TestPredictChunksTracksOverriddenOmega(t *testing.T) {
	spec := boundedIrregularSpec(4096, 19)
	cvm := spec.Sigma / spec.Mu
	p := 64
	const omega = 8.0 // far above the p=64 default ≈ 2.89: much smaller chunks

	cfg := machine.DefaultConfig(p)
	procs := make([]int, p)
	for i := range procs {
		procs[i] = i
	}
	actual := sched.ExecuteDistributed(cfg, spec.Op, procs,
		func() sched.Policy { return &sched.Taper{UseCostFunction: true, Omega: omega} },
		obs.OpObs{}).Chunks

	aware := PredictChunksOmega(spec.Op.N, p, cvm, omega)
	stale := PredictChunks(spec.Op.N, p, cvm)

	if stale >= aware {
		t.Fatalf("override ω=%v should predict more chunks than the default: aware %d, stale %d", omega, aware, stale)
	}
	awareErr := math.Abs(float64(aware - actual))
	staleErr := math.Abs(float64(stale - actual))
	if awareErr >= staleErr {
		t.Errorf("ω-aware prediction (%d) is no closer to the executed count (%d) than the drifted default (%d)",
			aware, actual, stale)
	}
	if r := float64(aware) / float64(actual); r < 0.5 || r > 2 {
		t.Errorf("ω-aware prediction %d vs executed %d: ratio %.2f outside [0.5, 2]", aware, actual, r)
	}

	// The drift propagated into equation (1)'s Sched term and from
	// there into allocation; the ω-aware estimate must differ.
	eAware := FinishEstimateOmega(cfg, spec, p, omega)
	eStale := FinishEstimate(cfg, spec, p)
	if eAware.Sched <= eStale.Sched {
		t.Errorf("Sched term should grow under ω=%v: aware %v, stale %v", omega, eAware.Sched, eStale.Sched)
	}
	if eAware.Compute != eStale.Compute {
		t.Errorf("ω must only affect the Sched term: compute %v vs %v", eAware.Compute, eStale.Compute)
	}
}
