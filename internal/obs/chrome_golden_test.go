package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

var update = flag.Bool("update", false, "rewrite golden files")

// figure1 is the paper's Figure 1 program — the same source
// examples/quickstart compiles and runs.
const figure1 = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

// TestChromeTraceGolden pins the full export path end to end: compile
// the quickstart program, execute its graph on the (deterministic)
// simulator with tracing on, render the Chrome trace-event JSON, and
// compare byte-for-byte against the committed golden file. Regenerate
// with `go test ./internal/obs/ -run ChromeTraceGolden -update` after
// an intentional format or scheduling change.
func TestChromeTraceGolden(t *testing.T) {
	out, err := core.CompileSource(figure1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n, p = 48, 4
	bind := func(name string) rts.OpSpec {
		// Deterministic, mildly varying task times so TAPER makes
		// non-trivial grain decisions without any randomness.
		s := rts.OpSpec{Op: sched.Op{
			Name:  name,
			N:     n,
			Time:  func(i int) float64 { return 1 + float64(i%7)/4 },
			Bytes: 64,
		}}
		s.SampleStats(16)
		return s
	}
	var col obs.Collector
	_, err = rts.RunGraph(machine.DefaultConfig(p), out.Graph, bind,
		rts.RunOpts{Processors: p, Mode: rts.ModeSplit, Sink: &col})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col.Trace); err != nil {
		t.Fatal(err)
	}

	// Structural validity first, so a diff comes with context: the file
	// must be one JSON object with a traceEvents array of phased events.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event without a phase: %v", e)
		}
		phases[ph]++
	}
	for _, ph := range []string{"M", "X", "C"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in the export (got %v)", ph, phases)
		}
	}

	const golden = "testdata/quickstart_chrome.json"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from %s (%d bytes vs %d); "+
			"rerun with -update if the change is intentional",
			golden, buf.Len(), len(want))
	}
}
