// Package obs is the runtime's flight recorder: a low-overhead event
// tracing subsystem both execution backends emit into. The paper's
// evaluation hinges on seeing what the runtime decided — the grain
// sizes TAPER picked, how the allocation algorithm equalized
// finishing-time estimates, where pipelined pairs overlapped — and
// this package captures exactly those decisions as timestamped events:
//
//   - KindChunk: one executed chunk of tasks (operator, worker, task
//     range, start/end time, whether the chunk was stolen);
//   - KindSteal: a chunk re-assignment between workers (thief, victim);
//   - KindTaper: one TAPER chunk-size decision (remaining tasks,
//     chosen grain, sample count, sampled μ and σ);
//   - KindGate: a producer's contiguous completed prefix advanced,
//     enabling pipelined consumer tasks;
//   - KindEpoch: the token tree completed an epoch and broadcast.
//
// Processor-allocation iterations (the per-operator finishing-time
// estimates setup+compute+lag+comm+sched of §4.1.2) are recorded
// separately as AllocEstimate rows: allocation happens once per level
// before execution, so it takes the cold mutex path.
//
// Capture is per-worker ring buffers with single-writer discipline:
// worker w appends only to ring w, so the hot emit path is a bounds
// check and a slice store — no locks, no allocation, no contention.
// When tracing is disabled the Recorder is nil and every emit method
// returns immediately on the nil receiver, so a disabled run pays one
// predictable branch per would-be event (the "nil-sink fast path").
//
// A backend drains the rings into a Trace after its workers join and
// hands it to the run's Sink (rts.RunOpts.Sink). Exporters render a
// Trace as Chrome trace-event JSON (WriteChromeTrace, loadable in
// Perfetto), CSV (WriteCSV), or a terminal per-operator Gantt chart
// (Summary).
package obs

import (
	"sort"
	"sync"

	"orchestra/internal/trace"
)

// Kind classifies an Event.
type Kind uint8

// The event taxonomy. Field usage per kind is documented on Event.
const (
	// KindChunk is one executed chunk: tasks [Lo, Lo+N) of operator Op
	// ran on Worker over [T0, T1]. Arg is 1 when the chunk was taken
	// from another worker's queue.
	KindChunk Kind = 1 + iota
	// KindSteal is a chunk re-assignment: Worker (the thief) took
	// tasks [Lo, Lo+N) of Op from worker Arg (the victim) at T0.
	KindSteal
	// KindTaper is a chunk-size decision at T0: with Lo tasks still
	// unscheduled in Op, the policy chose a grain of N tasks from Arg
	// samples whose mean is V0 and standard deviation V1.
	KindTaper
	// KindGate is a pipeline-gate advance at T0: operator Op's
	// contiguous completed prefix grew from Lo to Lo+N, enabling
	// pipelined consumers up to the mapped index.
	KindGate
	// KindEpoch is a token-tree epoch advance at T0: the root received
	// a token from every processor of Op's pool and broadcast epoch
	// Arg (§4.1.1's epoch/token protocol).
	KindEpoch
	// KindFault is an injected or detected fault at T0: worker Lo
	// crashed, stalled, slowed, or was declared dead, observed by
	// Worker (the native detector emits with its own dedicated ring).
	// Arg carries the fault action kind (fault.Kind numbering).
	KindFault
	// KindRetry is a chunk re-issue at T0: tasks [Lo, Lo+N) of Op,
	// recovered from unresponsive worker Arg, were handed back to the
	// survivors by Worker.
	KindRetry
	// KindRealloc marks a reallocation-on-loss at T0: the allocation
	// estimates were recomputed over the Arg surviving workers (the
	// fresh AllocEstimate rows carry the numbers).
	KindRealloc
	// KindChain is a cache-chain hit at T0: tasks [Lo, Lo+N) of
	// consumer operator Op ran on Worker immediately after the
	// producer chunk that enabled them, while the producer's output
	// was still cache-resident. Arg is the chain depth. The chunk's
	// span is the accompanying KindChunk event.
	KindChain
	// KindSpill is a chain fallback at T0: an enabled consumer block
	// of tasks [Lo, Lo+N) of Op could not be run in place (depth
	// limit, crash, cancellation) and was released to the ordinary
	// work-stealing path instead.
	KindSpill
	// KindMsg is one measured inter-process message round on the dist
	// backend: a segment grant for tasks [Lo, Lo+N) of Op sent to
	// worker process Worker at T0, whose completion arrived back at
	// T1. Arg carries the data-block payload bytes the round moved;
	// V0 is the worker-reported execution time, so T1-T0-V0 is the
	// round's pure communication cost.
	KindMsg
)

func (k Kind) String() string {
	switch k {
	case KindChunk:
		return "chunk"
	case KindSteal:
		return "steal"
	case KindTaper:
		return "taper"
	case KindGate:
		return "gate"
	case KindEpoch:
		return "epoch"
	case KindFault:
		return "fault"
	case KindRetry:
		return "retry"
	case KindRealloc:
		return "realloc"
	case KindChain:
		return "chain"
	case KindSpill:
		return "spill"
	case KindMsg:
		return "msg"
	}
	return "?"
}

// Event is one fixed-size trace record. Kind determines which fields
// are meaningful (see the Kind constants); times are in the Trace's
// Unit — wall-clock seconds for the native backend, simulator units
// for the simulated machine.
type Event struct {
	Kind   Kind
	Worker int32 // emitting worker/processor
	Op     int32 // operator index into Trace.Ops, -1 if none
	Lo     int32 // first task index (chunk/steal), old prefix (gate), remaining (taper)
	N      int32 // task count (chunk/steal/gate), chosen grain (taper)
	Arg    int32 // kind-specific (steal victim, taper samples, epoch number)
	T0     float64
	T1     float64 // chunk end time; unused otherwise
	V0     float64 // taper: sampled mean task time
	V1     float64 // taper: sampled standard deviation
}

// ringCap is the per-worker ring capacity. A ring overwrites its
// oldest events when full, so a long run keeps the most recent window
// (Trace.Dropped counts what was lost). At 32768 events × ~72 bytes a
// fully loaded ring holds ~2.4 MB.
const ringCap = 1 << 15

// ring is one worker's event buffer. Single writer (the owning
// worker); read only after the run's workers have joined.
type ring struct {
	buf []Event
	n   int // total events emitted, including overwritten ones
	// pad keeps adjacent rings off the same cache line, so two
	// workers' emit paths never false-share.
	_ [24]byte
}

func (r *ring) emit(ev Event) {
	if r.buf == nil {
		r.buf = make([]Event, ringCap)
	}
	r.buf[r.n&(ringCap-1)] = ev
	r.n++
}

// AllocEstimate is one evaluation of the processor-allocation
// algorithm's finishing-time estimate (§4.1.2): operator Op on Procs
// processors is predicted to finish in Setup+Compute+Lag+Comm+Sched.
// Round numbers the refinement iteration; Chosen marks the rows of the
// allocation finally used.
type AllocEstimate struct {
	Op      string
	Round   int
	Procs   int
	Setup   float64
	Compute float64
	Lag     float64
	Comm    float64
	Sched   float64
	Chosen  bool
}

// Total is the finishing-time estimate, the paper's equation (1).
func (a AllocEstimate) Total() float64 {
	return a.Setup + a.Compute + a.Lag + a.Comm + a.Sched
}

// Recorder captures events during one run. A nil *Recorder is valid
// and discards everything at the cost of one branch per emit call —
// backends create a Recorder only when the run has a Sink.
type Recorder struct {
	backend string
	unit    string
	ops     []string
	rings   []ring

	// mu guards the cold-path records (allocation estimates).
	mu     sync.Mutex
	allocs []AllocEstimate
}

// NewRecorder prepares per-worker rings for a run of the named backend
// over the given operators. unit is trace.Result's time unit ("" for
// simulator units, "s" for wall-clock seconds).
func NewRecorder(backend, unit string, ops []string, workers int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	return &Recorder{backend: backend, unit: unit, ops: ops, rings: make([]ring, workers)}
}

// OpNames returns the recorder's operator-name table (index = Event.Op).
func (r *Recorder) OpNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops
}

// AddOp appends an operator name mid-run and returns its index,
// for operators that only come into existence at execution time
// (runtime-expanded sub-graphs). Safe to call concurrently with
// event emission: events carry indices, and the name table is only
// consulted at Finish/export time. The caller must keep its own op
// indexing aligned with the returned index.
func (r *Recorder) AddOp(name string) int {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, name)
	return len(r.ops) - 1
}

func (r *Recorder) ring(w int) *ring {
	if w < 0 || w >= len(r.rings) {
		w = 0
	}
	return &r.rings[w]
}

// Chunk records that worker w executed tasks [lo, lo+n) of operator op
// over [t0, t1]. stolen marks chunks taken from another worker's queue.
func (r *Recorder) Chunk(w, op, lo, n int, t0, t1 float64, stolen bool) {
	if r == nil {
		return
	}
	var s int32
	if stolen {
		s = 1
	}
	r.ring(w).emit(Event{Kind: KindChunk, Worker: int32(w), Op: int32(op),
		Lo: int32(lo), N: int32(n), Arg: s, T0: t0, T1: t1})
}

// Steal records that worker w took tasks [lo, lo+n) of operator op
// from victim at time t.
func (r *Recorder) Steal(w, victim, op, lo, n int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindSteal, Worker: int32(w), Op: int32(op),
		Lo: int32(lo), N: int32(n), Arg: int32(victim), T0: t})
}

// Taper records a chunk-size decision on worker w: with remaining
// unscheduled tasks in op, the policy chose grain from samples
// observations of mean mu and standard deviation sigma.
func (r *Recorder) Taper(w, op, remaining, grain, samples int, mu, sigma, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindTaper, Worker: int32(w), Op: int32(op),
		Lo: int32(remaining), N: int32(grain), Arg: int32(samples), T0: t, V0: mu, V1: sigma})
}

// Gate records that operator op's contiguous completed prefix advanced
// from oldPfx to newPfx at time t, observed on worker w.
func (r *Recorder) Gate(w, op, oldPfx, newPfx int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindGate, Worker: int32(w), Op: int32(op),
		Lo: int32(oldPfx), N: int32(newPfx - oldPfx), T0: t})
}

// Epoch records a token-tree epoch broadcast for operator op at time t.
func (r *Recorder) Epoch(w, op, epoch int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindEpoch, Worker: int32(w), Op: int32(op),
		Arg: int32(epoch), T0: t})
}

// Fault records a fault observation at time t: worker target crashed,
// stalled, slowed or was declared dead (action is the fault.Kind
// number). w is the observing ring — the worker itself when the fault
// is self-injected, the detector's dedicated ring when detected.
func (r *Recorder) Fault(w, target, action int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindFault, Worker: int32(w), Op: -1,
		Lo: int32(target), Arg: int32(action), T0: t})
}

// Retry records that tasks [lo, lo+n) of operator op, recovered from
// unresponsive worker victim, were re-issued to the survivors at time t.
func (r *Recorder) Retry(w, victim, op, lo, n int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindRetry, Worker: int32(w), Op: int32(op),
		Lo: int32(lo), N: int32(n), Arg: int32(victim), T0: t})
}

// Chain records a cache-chain hit: worker w ran consumer tasks
// [lo, lo+n) of operator op at chain depth depth, immediately after
// completing the producer chunk that enabled them.
func (r *Recorder) Chain(w, op, lo, n, depth int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindChain, Worker: int32(w), Op: int32(op),
		Lo: int32(lo), N: int32(n), Arg: int32(depth), T0: t})
}

// Spill records a chain fallback: an enabled consumer block of tasks
// [lo, lo+n) of op was released to the work-stealing path instead of
// running in place on worker w.
func (r *Recorder) Spill(w, op, lo, n int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindSpill, Worker: int32(w), Op: int32(op),
		Lo: int32(lo), N: int32(n), T0: t})
}

// Msg records one measured message round on the dist backend: a grant
// for tasks [lo, lo+n) of operator op was sent to worker process w at
// t0, its completion arrived at t1, the worker reported exec seconds
// of execution, and the round moved bytes of data-block payload.
func (r *Recorder) Msg(w, op, lo, n int, bytes int64, t0, t1, exec float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindMsg, Worker: int32(w), Op: int32(op),
		Lo: int32(lo), N: int32(n), Arg: int32(bytes), T0: t0, T1: t1, V0: exec})
}

// Realloc records that the allocation estimates were recomputed over
// live surviving workers at time t (reallocation-on-loss); the
// accompanying AllocEstimate rows carry the recomputed terms.
func (r *Recorder) Realloc(w, live int, t float64) {
	if r == nil {
		return
	}
	r.ring(w).emit(Event{Kind: KindRealloc, Worker: int32(w), Op: -1,
		Arg: int32(live), T0: t})
}

// Alloc records one allocation-iteration estimate. Allocation runs
// once per dataflow level before tasks execute, so this takes a mutex
// rather than a ring.
func (r *Recorder) Alloc(a AllocEstimate) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.allocs = append(r.allocs, a)
	r.mu.Unlock()
}

// Trace is a completed run's recorded timeline: the merged, time-
// sorted events of every worker plus the run's aggregate Result.
type Trace struct {
	Backend string
	// Unit is the time unit of every event and of Result: "" for
	// simulator units, "s" for wall-clock seconds.
	Unit    string
	Ops     []string
	Workers int
	Events  []Event
	// Dropped counts events lost to ring overwrites.
	Dropped int
	Allocs  []AllocEstimate
	Result  trace.Result
}

// Finish drains the rings into a Trace. Call only after every emitting
// worker has stopped (the backend joins its pool first).
func (r *Recorder) Finish(res trace.Result) *Trace {
	if r == nil {
		return nil
	}
	t := &Trace{Backend: r.backend, Unit: r.unit, Ops: r.ops,
		Workers: len(r.rings), Allocs: r.allocs, Result: res}
	for i := range r.rings {
		rg := &r.rings[i]
		n := rg.n
		if n > ringCap {
			t.Dropped += n - ringCap
			n = ringCap
		}
		for j := rg.n - n; j < rg.n; j++ {
			t.Events = append(t.Events, rg.buf[j&(ringCap-1)])
		}
	}
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].T0 < t.Events[j].T0 })
	return t
}

// OpName resolves an event's operator index.
func (t *Trace) OpName(op int32) string {
	if op >= 0 && int(op) < len(t.Ops) {
		return t.Ops[op]
	}
	return "?"
}

// Sink receives a completed run's Trace. Implementations must not
// retain the trace's slices beyond Consume if they mutate them.
type Sink interface {
	Consume(t *Trace) error
}

// Collector is the trivial in-memory Sink: it keeps the last trace it
// received.
type Collector struct {
	Trace *Trace
}

// Consume implements Sink.
func (c *Collector) Consume(t *Trace) error {
	c.Trace = t
	return nil
}

// OpObs binds a Recorder to one operator index and a time base, for
// executors that run a single operator on their own clock (the
// barriered sched executors): events are emitted at Base + the
// executor's local time, so a graph run's operators land on one shared
// timeline. The zero value records nothing.
type OpObs struct {
	R    *Recorder
	Op   int
	Base float64
}

// On reports whether emission is enabled.
func (o OpObs) On() bool { return o.R != nil }
