package obs

import (
	"fmt"
	"strings"
)

// Summary renders a terminal-friendly per-operator view of a trace: a
// Gantt bar over the run's timespan (one row per operator, built from
// its chunk spans), per-operator totals (busy time, chunks, steals,
// TAPER grain range), and per-worker utilization. The bars answer the
// paper's central question at a glance: do operators overlap (split,
// pipelining) or execute in strict sequence (barriers)?
func Summary(t *Trace) string {
	const width = 60
	var b strings.Builder
	unit := t.Unit
	if unit == "" {
		unit = "units"
	}

	// Run span from the chunk events (fall back to the result).
	t0, t1 := 0.0, t.Result.Makespan
	for _, e := range t.Events {
		if e.Kind == KindChunk && e.T1 > t1 {
			t1 = e.T1
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	span := t1 - t0

	type opRow struct {
		cover              []bool
		busy               float64
		chunks, steals     int
		chains, spills     int
		minGrain, maxGrain int
		start, end         float64
	}
	rows := make([]opRow, len(t.Ops))
	for i := range rows {
		rows[i] = opRow{cover: make([]bool, width), start: -1, minGrain: -1}
	}
	workerBusy := make([]float64, t.Workers)
	cell := func(x float64) int {
		c := int((x - t0) / span * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	faults, retries, reallocs := 0, 0, 0
	msgs, msgComm, msgBytes := 0, 0.0, int64(0)
	for _, e := range t.Events {
		switch e.Kind {
		case KindFault:
			faults++
		case KindRetry:
			retries++
		case KindRealloc:
			reallocs++
		case KindMsg:
			msgs++
			if c := e.T1 - e.T0 - e.V0; c > 0 {
				msgComm += c
			}
			msgBytes += int64(e.Arg)
		}
		if e.Op < 0 || int(e.Op) >= len(rows) {
			continue
		}
		r := &rows[e.Op]
		switch e.Kind {
		case KindChunk:
			for c := cell(e.T0); c <= cell(e.T1); c++ {
				r.cover[c] = true
			}
			r.busy += e.T1 - e.T0
			r.chunks++
			if r.start < 0 || e.T0 < r.start {
				r.start = e.T0
			}
			if e.T1 > r.end {
				r.end = e.T1
			}
			if int(e.Worker) >= 0 && int(e.Worker) < len(workerBusy) {
				workerBusy[e.Worker] += e.T1 - e.T0
			}
		case KindSteal:
			r.steals++
		case KindChain:
			r.chains++
		case KindSpill:
			r.spills++
		case KindTaper:
			g := int(e.N)
			if r.minGrain < 0 || g < r.minGrain {
				r.minGrain = g
			}
			if g > r.maxGrain {
				r.maxGrain = g
			}
		}
	}

	fmt.Fprintf(&b, "%s  (%s, %d workers, makespan %.4g %s)\n",
		t.Result.Name, t.Backend, t.Workers, t.Result.Makespan, unit)
	nameW := 8
	for _, n := range t.Ops {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for i, n := range t.Ops {
		r := &rows[i]
		bar := make([]byte, width)
		for c := range bar {
			if r.cover[c] {
				bar[c] = '#'
			} else {
				bar[c] = '.'
			}
		}
		grain := ""
		if r.minGrain >= 0 {
			grain = fmt.Sprintf("  grain %d..%d", r.minGrain, r.maxGrain)
		}
		chain := ""
		if r.chains+r.spills > 0 {
			chain = fmt.Sprintf("  chained %d (spilled %d)", r.chains, r.spills)
		}
		fmt.Fprintf(&b, "  %-*s |%s| busy %8.4g  chunks %4d  steals %3d%s%s\n",
			nameW, n, bar, r.busy, r.chunks, r.steals, grain, chain)
	}
	for w := 0; w < t.Workers; w++ {
		fmt.Fprintf(&b, "  worker %-3d utilization %5.1f%%\n", w, 100*workerBusy[w]/span)
	}
	if len(t.Allocs) > 0 {
		fmt.Fprintf(&b, "  allocation estimates (setup+compute+lag+comm+sched):\n")
		for _, a := range t.Allocs {
			mark := " "
			if a.Chosen {
				mark = "*"
			}
			fmt.Fprintf(&b, "  %s round %d  %-*s p=%-4d %.4g = %.3g+%.3g+%.3g+%.3g+%.3g\n",
				mark, a.Round, nameW, a.Op, a.Procs, a.Total(),
				a.Setup, a.Compute, a.Lag, a.Comm, a.Sched)
		}
	}
	if faults+retries+reallocs > 0 {
		fmt.Fprintf(&b, "  faults: %d observed, %d chunk retries, %d reallocations\n",
			faults, retries, reallocs)
	}
	if msgs > 0 {
		fmt.Fprintf(&b, "  messages: %d rounds, %.4g %s comm, %d payload bytes\n",
			msgs, msgComm, unit, msgBytes)
	}
	if t.Dropped > 0 {
		fmt.Fprintf(&b, "  (dropped %d events to ring overflow)\n", t.Dropped)
	}
	return b.String()
}
