package obs

import (
	"sync"
	"testing"

	"orchestra/internal/trace"
)

// TestNilRecorderIsSafe checks the nil-sink fast path: every emit
// method must be a no-op on a nil receiver.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Chunk(0, 0, 0, 8, 0, 1, false)
	r.Steal(1, 0, 0, 0, 4, 2)
	r.Taper(0, 0, 100, 10, 5, 1, 0.5, 3)
	r.Gate(0, 0, 0, 16, 4)
	r.Epoch(0, 0, 1, 5)
	r.Alloc(AllocEstimate{Op: "a"})
	if r.Finish(trace.Result{}) != nil {
		t.Fatal("nil recorder must Finish to a nil trace")
	}
	if r.OpNames() != nil {
		t.Fatal("nil recorder has no op names")
	}
	if (OpObs{}).On() {
		t.Fatal("zero OpObs must be off")
	}
}

// TestFinishMergesAndSorts checks that Finish merges per-worker rings
// into one timeline ordered by start time.
func TestFinishMergesAndSorts(t *testing.T) {
	r := NewRecorder("sim", "", []string{"a", "b"}, 3)
	// Emit out of global order across workers.
	r.Chunk(2, 0, 0, 4, 5.0, 6.0, false)
	r.Chunk(0, 0, 4, 4, 1.0, 2.0, false)
	r.Chunk(1, 1, 0, 4, 3.0, 4.0, true)
	r.Steal(1, 2, 1, 0, 4, 2.5)
	res := trace.Result{Name: "t", Processors: 3, Makespan: 6}
	tr := r.Finish(res)
	if tr.Backend != "sim" || tr.Workers != 3 || len(tr.Ops) != 2 {
		t.Fatalf("trace metadata: %+v", tr)
	}
	if tr.Result.Makespan != 6 {
		t.Fatal("result not attached")
	}
	if len(tr.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(tr.Events))
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].T0 < tr.Events[i-1].T0 {
			t.Fatalf("events not time-sorted at %d: %v after %v",
				i, tr.Events[i].T0, tr.Events[i-1].T0)
		}
	}
	if tr.Events[1].Kind != KindSteal || tr.Events[1].Arg != 2 {
		t.Fatalf("steal event lost its victim: %+v", tr.Events[1])
	}
	if tr.Dropped != 0 {
		t.Fatalf("dropped %d events from unfilled rings", tr.Dropped)
	}
	if tr.OpName(0) != "a" || tr.OpName(1) != "b" || tr.OpName(-1) != "?" || tr.OpName(9) != "?" {
		t.Fatal("OpName resolution broken")
	}
}

// TestRingOverwriteKeepsRecentWindow fills a ring past capacity and
// checks that the oldest events are dropped, counted, and the survivors
// are the most recent ones.
func TestRingOverwriteKeepsRecentWindow(t *testing.T) {
	r := NewRecorder("sim", "", []string{"a"}, 1)
	const extra = 100
	for i := 0; i < ringCap+extra; i++ {
		r.Chunk(0, 0, i, 1, float64(i), float64(i)+0.5, false)
	}
	tr := r.Finish(trace.Result{})
	if tr.Dropped != extra {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped, extra)
	}
	if len(tr.Events) != ringCap {
		t.Fatalf("kept %d events, want %d", len(tr.Events), ringCap)
	}
	if first := tr.Events[0]; first.Lo != extra {
		t.Fatalf("oldest surviving event is task %d, want %d (most recent window)",
			first.Lo, extra)
	}
	if last := tr.Events[len(tr.Events)-1]; last.Lo != ringCap+extra-1 {
		t.Fatalf("newest event is task %d, want %d", last.Lo, ringCap+extra-1)
	}
}

// TestWorkerIndexClamped checks that an out-of-range worker index is
// clamped rather than panicking (defensive: backends own their ids).
func TestWorkerIndexClamped(t *testing.T) {
	r := NewRecorder("native", "s", []string{"a"}, 2)
	r.Chunk(-1, 0, 0, 1, 0, 1, false)
	r.Chunk(7, 0, 1, 1, 1, 2, false)
	if tr := r.Finish(trace.Result{}); len(tr.Events) != 2 {
		t.Fatalf("clamped emits lost: %d events", len(tr.Events))
	}
}

// TestConcurrentEmission drives the single-writer-per-ring contract
// under the race detector: one goroutine per worker hammering its own
// ring while others record allocation rows through the mutex path.
func TestConcurrentEmission(t *testing.T) {
	const workers, events = 8, 4000
	r := NewRecorder("native", "s", []string{"a", "b"}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				switch i % 4 {
				case 0:
					r.Chunk(w, i%2, i, 4, float64(i), float64(i+1), i%8 == 0)
				case 1:
					r.Taper(w, i%2, events-i, 4, i, 1.0, 0.1, float64(i))
				case 2:
					r.Steal(w, (w+1)%workers, i%2, i, 2, float64(i))
				case 3:
					r.Gate(w, i%2, i, i+4, float64(i))
				}
			}
			r.Alloc(AllocEstimate{Op: "a", Procs: w + 1})
		}(w)
	}
	wg.Wait()
	tr := r.Finish(trace.Result{})
	if got := len(tr.Events) + tr.Dropped; got != workers*events {
		t.Fatalf("events + dropped = %d, want %d", got, workers*events)
	}
	if len(tr.Allocs) != workers {
		t.Fatalf("allocs = %d, want %d", len(tr.Allocs), workers)
	}
}

// BenchmarkEmitDisabled measures the nil-sink fast path: the cost a
// disabled run pays per would-be event. This is the overhead the
// 2%-regression guard on the hotpath benchmarks bounds end to end.
func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Chunk(0, 0, i, 16, 0, 1, false)
	}
}

// BenchmarkEmitEnabled measures the hot ring-store path with tracing on.
func BenchmarkEmitEnabled(b *testing.B) {
	r := NewRecorder("native", "s", []string{"a"}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Chunk(0, 0, i, 16, 0, 1, false)
	}
}
