package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"orchestra/internal/machine"
)

// WriteChromeTrace renders a Trace in the Chrome trace-event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   - each worker is a named thread track carrying the operator chunk
//     spans it executed ("X" complete events);
//   - steals are flow arrows ("s"/"f" pairs) from the victim's track
//     to the thief's;
//   - TAPER grain decisions are per-operator counter tracks ("C"
//     events) showing the chosen chunk size over time;
//   - gate and epoch advances are instant events on the observing
//     worker's track;
//   - allocation estimates appear on a dedicated "allocator" track at
//     time zero, with the five estimate terms as args.
//
// Native traces are recorded in seconds and exported in microseconds
// (the format's unit); simulator traces are scaled by
// machine.SimUnitMicroseconds.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	scale := machine.SimUnitMicroseconds
	if t.Unit == "s" {
		scale = 1e6
	}
	type ev map[string]any
	events := make([]ev, 0, len(t.Events)+t.Workers+4)

	events = append(events, ev{
		"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
		"args": map[string]any{"name": t.Backend + "/" + t.Result.Name},
	})
	for i := 0; i < t.Workers; i++ {
		events = append(events, ev{
			"ph": "M", "pid": 1, "tid": i, "name": "thread_name",
			"args": map[string]any{"name": fmt.Sprintf("worker %d", i)},
		})
	}
	allocTid := t.Workers
	if len(t.Allocs) > 0 {
		events = append(events, ev{
			"ph": "M", "pid": 1, "tid": allocTid, "name": "thread_name",
			"args": map[string]any{"name": "allocator"},
		})
	}
	for i, a := range t.Allocs {
		events = append(events, ev{
			"ph": "i", "s": "t", "pid": 1, "tid": allocTid,
			"ts":   float64(i), // spread so Perfetto shows them individually
			"name": fmt.Sprintf("alloc %s p=%d", a.Op, a.Procs),
			"args": map[string]any{
				"round": a.Round, "procs": a.Procs, "chosen": a.Chosen,
				"setup": a.Setup, "compute": a.Compute, "lag": a.Lag,
				"comm": a.Comm, "sched": a.Sched, "total": a.Total(),
			},
		})
	}

	flowID := 0
	for _, e := range t.Events {
		name := t.OpName(e.Op)
		switch e.Kind {
		case KindChunk:
			args := map[string]any{"lo": e.Lo, "n": e.N}
			if e.Arg != 0 {
				args["stolen"] = true
			}
			events = append(events, ev{
				"ph": "X", "pid": 1, "tid": e.Worker, "name": name,
				"cat": "chunk", "ts": e.T0 * scale, "dur": (e.T1 - e.T0) * scale,
				"args": args,
			})
		case KindSteal:
			flowID++
			args := map[string]any{"op": name, "lo": e.Lo, "n": e.N}
			events = append(events,
				ev{"ph": "s", "pid": 1, "tid": e.Arg, "name": "steal",
					"cat": "steal", "id": flowID, "ts": e.T0 * scale, "args": args},
				ev{"ph": "f", "bp": "e", "pid": 1, "tid": e.Worker, "name": "steal",
					"cat": "steal", "id": flowID, "ts": e.T0*scale + 0.01, "args": args})
		case KindTaper:
			events = append(events, ev{
				"ph": "C", "pid": 1, "tid": 0, "name": "grain " + name,
				"ts": e.T0 * scale, "args": map[string]any{"grain": e.N},
			})
		case KindGate:
			events = append(events, ev{
				"ph": "i", "s": "t", "pid": 1, "tid": e.Worker,
				"name": "gate " + name, "cat": "gate", "ts": e.T0 * scale,
				"args": map[string]any{"prefix": e.Lo + e.N, "advanced": e.N},
			})
		case KindEpoch:
			events = append(events, ev{
				"ph": "i", "s": "t", "pid": 1, "tid": e.Worker,
				"name": "epoch " + name, "cat": "epoch", "ts": e.T0 * scale,
				"args": map[string]any{"epoch": e.Arg},
			})
		case KindFault:
			events = append(events, ev{
				"ph": "i", "s": "g", "pid": 1, "tid": e.Worker,
				"name": fmt.Sprintf("fault w%d", e.Lo), "cat": "fault",
				"ts":   e.T0 * scale,
				"args": map[string]any{"target": e.Lo, "action": e.Arg},
			})
		case KindRetry:
			events = append(events, ev{
				"ph": "i", "s": "t", "pid": 1, "tid": e.Worker,
				"name": "retry " + name, "cat": "fault", "ts": e.T0 * scale,
				"args": map[string]any{"lo": e.Lo, "n": e.N, "victim": e.Arg},
			})
		case KindRealloc:
			events = append(events, ev{
				"ph": "i", "s": "g", "pid": 1, "tid": e.Worker,
				"name": "realloc", "cat": "fault", "ts": e.T0 * scale,
				"args": map[string]any{"live": e.Arg},
			})
		case KindChain:
			events = append(events, ev{
				"ph": "i", "s": "t", "pid": 1, "tid": e.Worker,
				"name": "chain " + name, "cat": "chain", "ts": e.T0 * scale,
				"args": map[string]any{"lo": e.Lo, "n": e.N, "depth": e.Arg},
			})
		case KindSpill:
			events = append(events, ev{
				"ph": "i", "s": "t", "pid": 1, "tid": e.Worker,
				"name": "spill " + name, "cat": "chain", "ts": e.T0 * scale,
				"args": map[string]any{"lo": e.Lo, "n": e.N},
			})
		case KindMsg:
			events = append(events, ev{
				"ph": "X", "pid": 1, "tid": e.Worker, "name": "msg " + name,
				"cat": "msg", "ts": e.T0 * scale, "dur": (e.T1 - e.T0) * scale,
				"args": map[string]any{"lo": e.Lo, "n": e.N, "bytes": e.Arg,
					"exec": e.V0, "comm": e.T1 - e.T0 - e.V0},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
		"otherData": map[string]any{
			"backend": t.Backend, "unit": t.Unit,
			"dropped": t.Dropped, "result": t.Result,
		},
	})
}
