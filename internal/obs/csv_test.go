package obs

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"orchestra/internal/trace"
)

// TestCSVRoundTrip checks that exporter output — including the
// dropped-events report and the fault event kinds — is standard CSV:
// encoding/csv must re-parse every row with a uniform column count.
func TestCSVRoundTrip(t *testing.T) {
	r := NewRecorder("native", "s", []string{"a", "b"}, 2)
	r.Chunk(0, 0, 0, 8, 0.0, 1.0, false)
	r.Steal(1, 0, 1, 8, 4, 1.5)
	r.Fault(1, 0, 1, 2.0)
	r.Retry(1, 0, 1, 12, 4, 2.1)
	r.Realloc(1, 1, 2.2)
	r.Alloc(AllocEstimate{Op: "a", Round: 1, Procs: 2, Chosen: true,
		Setup: 0.1, Compute: 2, Lag: 0.3, Comm: 0.4, Sched: 0.05})
	tr := r.Finish(trace.Result{Name: "rt", Makespan: 3})
	tr.Dropped = 17 // simulate ring overflow without emitting 32k events

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exporter output is not valid CSV: %v", err)
	}
	wantRows := 1 + len(tr.Events) + len(tr.Allocs) + 1 // header + meta
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	if got := rows[0][0]; got != "kind" {
		t.Fatalf("header row starts with %q", got)
	}
	for i, row := range rows {
		if len(row) != 10 {
			t.Fatalf("row %d has %d columns, want 10: %v", i, len(row), row)
		}
	}
	meta := rows[len(rows)-1]
	if meta[0] != "meta" || meta[2] != "dropped" {
		t.Fatalf("last row is not the meta/dropped row: %v", meta)
	}
	if n, err := strconv.Atoi(meta[3]); err != nil || n != 17 {
		t.Fatalf("meta row count column = %q, want 17", meta[3])
	}

	kinds := make(map[string]int)
	for _, row := range rows[1:] {
		kinds[row[0]]++
	}
	for _, k := range []string{"chunk", "steal", "fault", "retry", "realloc", "alloc"} {
		if kinds[k] == 0 {
			t.Errorf("no %s row in exporter output", k)
		}
	}
}

// TestCSVNoDroppedNoMeta checks that clean traces stay meta-free.
func TestCSVNoDroppedNoMeta(t *testing.T) {
	r := NewRecorder("sim", "", []string{"a"}, 1)
	r.Chunk(0, 0, 0, 4, 0, 1, false)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r.Finish(trace.Result{})); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row[0] == "meta" {
			t.Fatalf("unexpected meta row without drops: %v", row)
		}
	}
}
