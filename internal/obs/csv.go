package obs

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV renders a Trace as one flat CSV table, one row per event,
// with allocation estimates appended as kind=alloc rows. Times are in
// the trace's native unit. The column set is stable: downstream
// tooling may rely on the header line.
func WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "worker", "op", "lo", "n", "arg", "t0", "t1", "v0", "v1"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range t.Events {
		if err := cw.Write([]string{
			e.Kind.String(),
			strconv.Itoa(int(e.Worker)),
			t.OpName(e.Op),
			strconv.Itoa(int(e.Lo)),
			strconv.Itoa(int(e.N)),
			strconv.Itoa(int(e.Arg)),
			f(e.T0), f(e.T1), f(e.V0), f(e.V1),
		}); err != nil {
			return err
		}
	}
	for _, a := range t.Allocs {
		chosen := 0
		if a.Chosen {
			chosen = 1
		}
		if err := cw.Write([]string{
			"alloc",
			strconv.Itoa(a.Round),
			a.Op,
			strconv.Itoa(a.Procs),
			strconv.Itoa(chosen),
			"0",
			f(a.Setup), f(a.Compute), f(a.Lag), f(a.Comm),
		}); err != nil {
			return err
		}
	}
	// Ring overflow is reported as a regular row (kind=meta, op names
	// the datum, lo carries the count) so the file stays parseable by
	// standard CSV readers; a trailing comment line is not CSV.
	if t.Dropped > 0 {
		if err := cw.Write([]string{
			"meta", "0", "dropped",
			strconv.Itoa(t.Dropped),
			"0", "0", "0", "0", "0", "0",
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
