// Package descriptor implements symbolic data descriptors (§3.2): the
// paper's summarization of memory access behaviour. A descriptor is two
// sets of triples <G> B[P] — one for data locations read, one for data
// locations written. G is an optional symbolic guard; B the memory
// block; P an optional access pattern with a range expression per
// dimension and optional masks such as  q[1..10/(miss[*] != 1), 1..10].
//
// The package provides the interference relation between descriptors
// (output-, flow-, and anti-dependence), the promotion of an iteration
// descriptor to a whole-loop descriptor (guards over the induction
// variable become masks across the promoted dimension), and the
// iteration-shift substitution that the pipelining variant of split
// uses. All tests are conservative: descriptors interfere unless
// disjointness can be proven.
package descriptor

import (
	"fmt"
	"strings"

	"orchestra/internal/symbolic"
)

// Mask restricts the elements of one dimension with a predicate over
// the current element, written with symbolic.Star, e.g.
// mask[*] != 0. An access to index x is masked out when Pred with
// Star := x is false.
type Mask struct {
	Pred symbolic.Pred
}

// Instantiate returns the mask predicate with the placeholder replaced
// by a concrete index expression.
func (m Mask) Instantiate(x symbolic.Expr) symbolic.Pred {
	return m.Pred.Subst(symbolic.Star, x)
}

// Equal reports structural equality.
func (m Mask) Equal(o Mask) bool { return m.Pred.Equal(o.Pred) }

func (m Mask) String() string { return m.Pred.String() }

// Dim is the access pattern of one array dimension: a union of ranges,
// optionally restricted by a mask.
type Dim struct {
	Ranges []symbolic.Range
	Mask   *Mask
}

// PointDim builds a dimension accessed at a single index.
func PointDim(e symbolic.Expr) Dim {
	return Dim{Ranges: []symbolic.Range{symbolic.Point(e)}}
}

// RangeDim builds a dimension accessed over one range.
func RangeDim(r symbolic.Range) Dim {
	return Dim{Ranges: []symbolic.Range{r}}
}

// IsPoint reports whether the dimension accesses a single expression
// index (one degenerate range, no mask).
func (d Dim) IsPoint() (symbolic.Expr, bool) {
	if len(d.Ranges) == 1 && d.Mask == nil {
		return d.Ranges[0].IsPoint()
	}
	return symbolic.Expr{}, false
}

// Uses reports whether name n appears in any range of the dimension.
func (d Dim) Uses(n symbolic.Name) bool {
	for _, r := range d.Ranges {
		if r.Uses(n) {
			return true
		}
	}
	if d.Mask != nil && d.Mask.Pred.Uses(n) {
		return true
	}
	return false
}

// Subst replaces name n with expression v throughout the dimension.
func (d Dim) Subst(n symbolic.Name, v symbolic.Expr) Dim {
	out := Dim{Ranges: make([]symbolic.Range, len(d.Ranges))}
	for i, r := range d.Ranges {
		out.Ranges[i] = r.Subst(n, v)
	}
	if d.Mask != nil {
		m := Mask{Pred: d.Mask.Pred.Subst(n, v)}
		out.Mask = &m
	}
	return out
}

func (d Dim) String() string {
	parts := make([]string, len(d.Ranges))
	for i, r := range d.Ranges {
		parts[i] = r.String()
	}
	s := strings.Join(parts, " and ")
	if d.Mask != nil {
		s = fmt.Sprintf("%s/(%s)", s, d.Mask)
	}
	return s
}

// Triple is one access summary <G> B[P].
type Triple struct {
	// Guard is a conjunction of predicates; the access is known not to
	// occur when the guard is false. nil means unconditional.
	Guard symbolic.Conj
	// Block is the accessed memory block (array or scalar name).
	Block symbolic.Name
	// Dims is the access pattern, one entry per dimension; nil means
	// the whole block is accessed.
	Dims []Dim
}

// ScalarTriple summarizes an access to an entire scalar or array block.
func ScalarTriple(block symbolic.Name) Triple { return Triple{Block: block} }

// Whole reports whether the triple covers its entire block.
func (t Triple) Whole() bool { return len(t.Dims) == 0 }

// WithGuard returns the triple with the guard extended by g.
func (t Triple) WithGuard(g symbolic.Conj) Triple {
	t.Guard = t.Guard.Merge(g)
	return t
}

// Subst replaces name n with expression v throughout the triple.
func (t Triple) Subst(n symbolic.Name, v symbolic.Expr) Triple {
	out := Triple{Block: t.Block, Guard: t.Guard.Subst(n, v)}
	for _, d := range t.Dims {
		out.Dims = append(out.Dims, d.Subst(n, v))
	}
	return out
}

// Uses reports whether name n appears in the triple's pattern or guard.
func (t Triple) Uses(n symbolic.Name) bool {
	for _, d := range t.Dims {
		if d.Uses(n) {
			return true
		}
	}
	return t.Guard.Uses(n)
}

func (t Triple) String() string {
	var b strings.Builder
	if len(t.Guard) > 0 {
		fmt.Fprintf(&b, "<%s> ", t.Guard)
	}
	b.WriteString(string(t.Block))
	if len(t.Dims) > 0 {
		b.WriteByte('[')
		for i, d := range t.Dims {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.String())
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Descriptor summarizes the memory behaviour of a computation.
type Descriptor struct {
	Reads  []Triple
	Writes []Triple
}

// AddRead appends a read triple.
func (d *Descriptor) AddRead(t Triple) { d.Reads = append(d.Reads, t) }

// AddWrite appends a write triple.
func (d *Descriptor) AddWrite(t Triple) { d.Writes = append(d.Writes, t) }

// Merge folds another descriptor's triples into d.
func (d *Descriptor) Merge(o Descriptor) {
	d.Reads = append(d.Reads, o.Reads...)
	d.Writes = append(d.Writes, o.Writes...)
}

// Empty reports whether the descriptor has no accesses.
func (d Descriptor) Empty() bool { return len(d.Reads) == 0 && len(d.Writes) == 0 }

// Subst replaces name n with expression v in every triple.
func (d Descriptor) Subst(n symbolic.Name, v symbolic.Expr) Descriptor {
	out := Descriptor{}
	for _, t := range d.Reads {
		out.Reads = append(out.Reads, t.Subst(n, v))
	}
	for _, t := range d.Writes {
		out.Writes = append(out.Writes, t.Subst(n, v))
	}
	return out
}

// Blocks returns the set of block names the descriptor touches.
func (d Descriptor) Blocks() map[symbolic.Name]bool {
	out := map[symbolic.Name]bool{}
	for _, t := range d.Reads {
		out[t.Block] = true
	}
	for _, t := range d.Writes {
		out[t.Block] = true
	}
	return out
}

func (d Descriptor) String() string {
	var b strings.Builder
	b.WriteString("write:")
	for _, t := range d.Writes {
		b.WriteString(" " + t.String())
	}
	b.WriteString("\nread:")
	for _, t := range d.Reads {
		b.WriteString(" " + t.String())
	}
	return b.String()
}
