package descriptor

import "orchestra/internal/symbolic"

// MayIntersect conservatively reports whether two triples can reference
// a common memory location, given a context of predicates known to
// hold. It returns false only when disjointness is provable.
func MayIntersect(a, b Triple, ctx symbolic.Conj) bool {
	if a.Block != b.Block {
		return false
	}
	// If either access provably cannot occur, no intersection.
	if ctx.Merge(a.Guard).ProvesFalse() || ctx.Merge(b.Guard).ProvesFalse() {
		return false
	}
	// If the two guards cannot hold in the same execution, the accesses
	// never coexist, hence no dependence between them.
	if ctx.Merge(a.Guard).Merge(b.Guard).ProvesFalse() {
		return false
	}
	if a.Whole() || b.Whole() {
		return true
	}
	if len(a.Dims) != len(b.Dims) {
		// Mismatched dimensionality (should not happen for well-typed
		// programs); assume intersection.
		return true
	}
	// Disjoint if ANY dimension is provably disjoint.
	for i := range a.Dims {
		if dimsDisjoint(a.Dims[i], b.Dims[i], a.Guard, b.Guard, ctx) {
			return false
		}
	}
	return true
}

// dimsDisjoint reports whether the index sets of one dimension are
// provably disjoint.
func dimsDisjoint(da, db Dim, ga, gb, ctx symbolic.Conj) bool {
	// Complementary masks: the element sets {x : Pa(x)} and {x : Pb(x)}
	// cannot share an element when the instantiated predicates
	// contradict for the generic element.
	if da.Mask != nil && db.Mask != nil {
		if da.Mask.Pred.Contradicts(db.Mask.Pred) {
			return true
		}
	}
	// Point vs mask: instantiate the mask at the point and test against
	// the point's guard and the context.
	if p, ok := da.IsPoint(); ok && db.Mask != nil {
		inst := db.Mask.Instantiate(p)
		if ctx.Merge(ga).Merge(symbolic.Conj{inst}).ProvesFalse() {
			return true
		}
	}
	if p, ok := db.IsPoint(); ok && da.Mask != nil {
		inst := da.Mask.Instantiate(p)
		if ctx.Merge(gb).Merge(symbolic.Conj{inst}).ProvesFalse() {
			return true
		}
	}
	// Range disjointness: every pair of ranges provably disjoint.
	for _, ra := range da.Ranges {
		for _, rb := range db.Ranges {
			if !symbolic.ProvesDisjointRanges(ra, rb, ctx) {
				return false
			}
		}
	}
	return true
}

// setsIntersect reports whether any triple of as may intersect any of
// bs.
func setsIntersect(as, bs []Triple, ctx symbolic.Conj) bool {
	for _, a := range as {
		for _, b := range bs {
			if MayIntersect(a, b, ctx) {
				return true
			}
		}
	}
	return false
}

// Interferes implements the paper's interference relation:
//
//	A interferes with B iff (A.w ∩ B.w ≠ ∅) or (A.w ∩ B.r ≠ ∅) or
//	(A.r ∩ B.w ≠ ∅)
//
// covering output-, flow-, and anti-dependencies. When two descriptors
// do not interfere, the computations they summarize are independent.
func Interferes(a, b Descriptor, ctx symbolic.Conj) bool {
	return setsIntersect(a.Writes, b.Writes, ctx) ||
		setsIntersect(a.Writes, b.Reads, ctx) ||
		setsIntersect(a.Reads, b.Writes, ctx)
}

// FlowInterferes reports whether successor computation B has a flow
// interference from predecessor computation A: A.writes ∩ B.reads ≠ ∅.
// Unlike Interferes, this relation is not symmetric.
func FlowInterferes(a, b Descriptor, ctx symbolic.Conj) bool {
	return setsIntersect(a.Writes, b.Reads, ctx)
}
