package descriptor

import (
	"testing"

	"orchestra/internal/symbolic"
)

// mapEval is a simple in-memory Evaluator for tests.
type mapEval struct {
	names map[symbolic.Name]int64
	elems map[string]float64 // "arr[i,j]" keys
}

func (m *mapEval) NameValue(n symbolic.Name) (int64, bool) {
	v, ok := m.names[n]
	return v, ok
}

func (m *mapEval) Element(array symbolic.Name, idx []int64) (float64, bool) {
	key := string(array) + "["
	for k, i := range idx {
		if k > 0 {
			key += ","
		}
		key += itoa(i)
	}
	key += "]"
	v, ok := m.elems[key]
	return v, ok
}

func itoa(i int64) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [24]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

func TestCoversAccessRanges(t *testing.T) {
	ev := &mapEval{names: map[symbolic.Name]int64{"n.1": 10}}
	tr := Triple{Block: "q", Dims: []Dim{
		RangeDim(symbolic.NewRange(symbolic.Const(1), n)),
		PointDim(symbolic.Const(3)),
	}}
	if !tr.CoversAccess(ev, "q", []int64{5, 3}) {
		t.Fatal("in-range access not covered")
	}
	if tr.CoversAccess(ev, "q", []int64{11, 3}) {
		t.Fatal("out-of-range access covered")
	}
	if tr.CoversAccess(ev, "q", []int64{5, 4}) {
		t.Fatal("wrong point covered")
	}
	if tr.CoversAccess(ev, "zz", []int64{5, 3}) {
		t.Fatal("wrong block covered")
	}
	// Dimensionality mismatch.
	if tr.CoversAccess(ev, "q", []int64{5}) {
		t.Fatal("dimension mismatch covered")
	}
}

func TestCoversAccessStride(t *testing.T) {
	ev := &mapEval{names: map[symbolic.Name]int64{}}
	tr := Triple{Block: "x", Dims: []Dim{
		{Ranges: []symbolic.Range{{Start: symbolic.Const(2), End: symbolic.Const(10), Skip: 2}}},
	}}
	if !tr.CoversAccess(ev, "x", []int64{4}) {
		t.Fatal("even element not covered")
	}
	if tr.CoversAccess(ev, "x", []int64{5}) {
		t.Fatal("odd element covered by even stride")
	}
}

func TestCoversAccessGuardAndMask(t *testing.T) {
	ev := &mapEval{
		names: map[symbolic.Name]int64{"col.1": 3, "n.1": 8},
		elems: map[string]float64{
			"mask[3]": 1, "mask[4]": 0, "mask[5]": 1,
		},
	}
	// Guarded triple: access occurs only when mask[col] != 0.
	guard := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("mask", col), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	tr := Triple{Guard: guard, Block: "q", Dims: []Dim{PointDim(col)}}
	if !tr.CoversAccess(ev, "q", []int64{3}) {
		t.Fatal("true guard should cover")
	}
	ev.names["col.1"] = 4
	if tr.CoversAccess(ev, "q", []int64{4}) {
		t.Fatal("false guard should exclude")
	}

	// Masked dimension: covered only where mask[*] != 0.
	star := symbolic.Var(symbolic.Star)
	mask := Mask{Pred: symbolic.NewPred(
		symbolic.ElemAtom("mask", star), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	tm := Triple{Block: "q", Dims: []Dim{
		{Ranges: []symbolic.Range{symbolic.NewRange(symbolic.Const(1), n)}, Mask: &mask},
	}}
	if !tm.CoversAccess(ev, "q", []int64{5}) {
		t.Fatal("masked-in element not covered")
	}
	if tm.CoversAccess(ev, "q", []int64{4}) {
		t.Fatal("masked-out element covered")
	}
}

func TestCoversAccessUndecidableDefaultsToCovered(t *testing.T) {
	// Unresolvable names in bounds or masks must default to covering —
	// the conservative direction for a may-access summary.
	ev := &mapEval{names: map[symbolic.Name]int64{}}
	tr := Triple{Block: "q", Dims: []Dim{
		RangeDim(symbolic.NewRange(symbolic.Const(1), symbolic.Var("unknown.9"))),
	}}
	if !tr.CoversAccess(ev, "q", []int64{7}) {
		t.Fatal("undecidable bound should cover")
	}
	star := symbolic.Var(symbolic.Star)
	mask := Mask{Pred: symbolic.NewPred(
		symbolic.ElemAtom("ghost", star), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	tm := Triple{Block: "q", Dims: []Dim{
		{Ranges: []symbolic.Range{symbolic.ConstRange(1, 10)}, Mask: &mask},
	}}
	if !tm.CoversAccess(ev, "q", []int64{7}) {
		t.Fatal("undecidable mask should cover")
	}
}

func TestCoversWholeBlock(t *testing.T) {
	ev := &mapEval{}
	tr := ScalarTriple("x")
	if !tr.CoversAccess(ev, "x", []int64{99}) {
		t.Fatal("whole-block triple should cover any index")
	}
}

func TestDescriptorCoversReadWrite(t *testing.T) {
	ev := &mapEval{names: map[symbolic.Name]int64{"n.1": 10}}
	var d Descriptor
	d.AddRead(Triple{Block: "a", Dims: []Dim{RangeDim(symbolic.NewRange(symbolic.Const(1), n))}})
	d.AddWrite(Triple{Block: "b", Dims: []Dim{PointDim(symbolic.Const(2))}})
	if !d.CoversRead(ev, "a", []int64{5}) || d.CoversRead(ev, "b", []int64{2}) {
		t.Fatal("CoversRead wrong")
	}
	if !d.CoversWrite(ev, "b", []int64{2}) || d.CoversWrite(ev, "a", []int64{5}) {
		t.Fatal("CoversWrite wrong")
	}
}

func TestEvalPredOperators(t *testing.T) {
	ev := &mapEval{names: map[symbolic.Name]int64{"i.1": 5}}
	iv := symbolic.Var("i.1")
	cases := []struct {
		p    symbolic.Pred
		want bool
	}{
		{symbolic.CmpExpr(iv, symbolic.EQ, symbolic.Const(5)), true},
		{symbolic.CmpExpr(iv, symbolic.NE, symbolic.Const(5)), false},
		{symbolic.CmpExpr(iv, symbolic.LT, symbolic.Const(6)), true},
		{symbolic.CmpExpr(iv, symbolic.LE, symbolic.Const(5)), true},
		{symbolic.CmpExpr(iv, symbolic.GT, symbolic.Const(5)), false},
		{symbolic.CmpExpr(iv, symbolic.GE, symbolic.Const(6)), false},
	}
	for _, c := range cases {
		got, ok := evalPred(c.p, ev, 0, false)
		if !ok || got != c.want {
			t.Errorf("%v: got=%v ok=%v want=%v", c.p, got, ok, c.want)
		}
	}
}
