package descriptor

import "orchestra/internal/symbolic"

// Concrete evaluation of descriptors against ground truth: the test
// suite executes programs with the reference interpreter, records every
// actual memory access, and checks that the statically computed
// descriptor covers it. This is the soundness obligation of the
// summarization: a descriptor may over-approximate but never miss an
// access.

// Evaluator supplies concrete values for SSA names and array elements
// when deciding whether a triple covers an access.
type Evaluator interface {
	// NameValue resolves an SSA name (or bare identifier) to its value
	// at the summarized program point.
	NameValue(n symbolic.Name) (int64, bool)
	// Element resolves an array element (1-based indices).
	Element(array symbolic.Name, idx []int64) (float64, bool)
}

// evalExpr evaluates a linear expression.
func evalExpr(e symbolic.Expr, ev Evaluator, star int64, haveStar bool) (int64, bool) {
	v := e.ConstPart()
	for _, n := range e.Names() {
		var nv int64
		if n == symbolic.Star {
			if !haveStar {
				return 0, false
			}
			nv = star
		} else {
			x, ok := ev.NameValue(n)
			if !ok {
				return 0, false
			}
			nv = x
		}
		v += e.Coef(n) * nv
	}
	return v, true
}

// evalPred evaluates a predicate; undecidable predicates (unresolvable
// names or elements) report ok=false and the caller must assume true.
func evalPred(p symbolic.Pred, ev Evaluator, star int64, haveStar bool) (truth, ok bool) {
	l, okL := evalAtom(p.Lhs, ev, star, haveStar)
	r, okR := evalAtom(p.Rhs, ev, star, haveStar)
	if !okL || !okR {
		return false, false
	}
	switch p.Op {
	case symbolic.EQ:
		return l == r, true
	case symbolic.NE:
		return l != r, true
	case symbolic.LT:
		return l < r, true
	case symbolic.LE:
		return l <= r, true
	case symbolic.GT:
		return l > r, true
	case symbolic.GE:
		return l >= r, true
	}
	return false, false
}

func evalAtom(a symbolic.Atom, ev Evaluator, star int64, haveStar bool) (float64, bool) {
	if !a.IsElem() {
		v, ok := evalExpr(a.E, ev, star, haveStar)
		return float64(v), ok
	}
	idx := make([]int64, len(a.Index))
	for i, e := range a.Index {
		v, ok := evalExpr(e, ev, star, haveStar)
		if !ok {
			return 0, false
		}
		idx[i] = v
	}
	return ev.Element(a.Array, idx)
}

// CoversAccess reports whether the triple covers a concrete access to
// block[idx] under the evaluator. Undecidable guards and masks default
// to covering (the conservative direction for a may-access summary).
func (t Triple) CoversAccess(ev Evaluator, block symbolic.Name, idx []int64) bool {
	if t.Block != block {
		return false
	}
	// A provably false guard means the access cannot be this triple's.
	for _, p := range t.Guard {
		if truth, ok := evalPred(p, ev, 0, false); ok && !truth {
			return false
		}
	}
	if t.Whole() {
		return true
	}
	if len(t.Dims) != len(idx) {
		return false
	}
	for d, dim := range t.Dims {
		x := idx[d]
		inRange := false
		for _, r := range dim.Ranges {
			lo, okLo := evalExpr(r.Start, ev, 0, false)
			hi, okHi := evalExpr(r.End, ev, 0, false)
			if !okLo || !okHi {
				inRange = true // undecidable: assume covered
				break
			}
			skip := r.Skip
			if skip < 1 {
				skip = 1
			}
			if x >= lo && x <= hi && (x-lo)%skip == 0 {
				inRange = true
				break
			}
		}
		if !inRange {
			return false
		}
		if dim.Mask != nil {
			if truth, ok := evalPred(dim.Mask.Pred, ev, x, true); ok && !truth {
				return false
			}
		}
	}
	return true
}

// CoversRead reports whether any read triple covers the access.
func (d Descriptor) CoversRead(ev Evaluator, block symbolic.Name, idx []int64) bool {
	for _, t := range d.Reads {
		if t.CoversAccess(ev, block, idx) {
			return true
		}
	}
	return false
}

// CoversWrite reports whether any write triple covers the access.
func (d Descriptor) CoversWrite(ev Evaluator, block symbolic.Name, idx []int64) bool {
	for _, t := range d.Writes {
		if t.CoversAccess(ev, block, idx) {
			return true
		}
	}
	return false
}
