package descriptor

import (
	"strings"
	"testing"

	"orchestra/internal/symbolic"
)

var (
	n   = symbolic.Var("n.1")
	i   = symbolic.Var("i.1")
	col = symbolic.Var("col.1")
)

func fullRange() symbolic.Range { return symbolic.NewRange(symbolic.Const(1), n) }

// q[1..n, col]
func writeColumn(arr symbolic.Name, c symbolic.Expr) Triple {
	return Triple{Block: arr, Dims: []Dim{RangeDim(fullRange()), PointDim(c)}}
}

func TestTripleString(t *testing.T) {
	tr := Triple{
		Guard: symbolic.Conj{symbolic.NewPred(
			symbolic.ElemAtom("miss", i), symbolic.NE, symbolic.ExprAtom(symbolic.Const(1)))},
		Block: "q",
		Dims:  []Dim{PointDim(i), RangeDim(symbolic.ConstRange(1, 10))},
	}
	want := "<miss[i.1] != 1> q[i.1, 1..10]"
	if tr.String() != want {
		t.Fatalf("String = %q, want %q", tr.String(), want)
	}
}

func TestScalarInterference(t *testing.T) {
	var g, h Descriptor
	g.AddWrite(ScalarTriple("sum"))
	h.AddRead(ScalarTriple("sum"))
	if !Interferes(g, h, nil) {
		t.Fatal("scalar flow dependence missed")
	}
	var k Descriptor
	k.AddRead(ScalarTriple("other"))
	if Interferes(g, k, nil) {
		t.Fatal("different scalars interfere")
	}
}

func TestReadReadNoInterference(t *testing.T) {
	var a, b Descriptor
	a.AddRead(ScalarTriple("x"))
	b.AddRead(ScalarTriple("x"))
	if Interferes(a, b, nil) {
		t.Fatal("read/read must not interfere")
	}
}

func TestColumnVsColumnDisjoint(t *testing.T) {
	// Figure 3's pipelining core: column col vs column col-1.
	var a, b Descriptor
	a.AddWrite(writeColumn("q", col))
	b.AddWrite(writeColumn("q", col.AddConst(-1)))
	if Interferes(a, b, nil) {
		t.Fatal("columns col and col-1 interfere")
	}
	var c Descriptor
	c.AddWrite(writeColumn("q", col))
	if !Interferes(a, c, nil) {
		t.Fatal("same column must interfere")
	}
}

func TestFigure4Split(t *testing.T) {
	// G writes X[a, 1..n]; H reads X[1..n, 1..n]. They interfere; after
	// restricting H's rows to 1..a-1 and a+1..n they do not.
	a := symbolic.Var("a.1")
	var g Descriptor
	g.AddWrite(Triple{Block: "x", Dims: []Dim{PointDim(a), RangeDim(fullRange())}})
	g.AddRead(Triple{Block: "x", Dims: []Dim{PointDim(a), RangeDim(fullRange())}})

	var h Descriptor
	h.AddRead(Triple{Block: "x", Dims: []Dim{RangeDim(fullRange()), RangeDim(fullRange())}})
	if !Interferes(g, h, nil) {
		t.Fatal("G and H should interfere")
	}

	var hi Descriptor
	hi.AddRead(Triple{Block: "x", Dims: []Dim{
		{Ranges: []symbolic.Range{
			symbolic.NewRange(symbolic.Const(1), a.AddConst(-1)),
			symbolic.NewRange(a.AddConst(1), n),
		}},
		RangeDim(fullRange()),
	}})
	if Interferes(g, hi, nil) {
		t.Fatal("restricted H still interferes with G")
	}
}

func TestGuardContradictionKillsInterference(t *testing.T) {
	// Two accesses guarded by contradictory predicates on the same
	// element can never both occur.
	gPos := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("mask", col), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	gZero := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("mask", col), symbolic.EQ, symbolic.ExprAtom(symbolic.Const(0)))}
	var a, b Descriptor
	a.AddWrite(writeColumn("q", col).WithGuard(gPos))
	b.AddRead(writeColumn("q", col).WithGuard(gZero))
	if Interferes(a, b, nil) {
		t.Fatal("contradictory guards should kill interference")
	}
}

func TestComplementaryMasksDisjoint(t *testing.T) {
	// Figure 2: A writes columns where mask[*] != 0; BI reads columns
	// where mask[*] == 0.
	star := symbolic.Var(symbolic.Star)
	maskNZ := Mask{Pred: symbolic.NewPred(
		symbolic.ElemAtom("mask", star), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	maskZ := Mask{Pred: symbolic.NewPred(
		symbolic.ElemAtom("mask", star), symbolic.EQ, symbolic.ExprAtom(symbolic.Const(0)))}

	var a, bi Descriptor
	a.AddWrite(Triple{Block: "q", Dims: []Dim{
		RangeDim(fullRange()),
		{Ranges: []symbolic.Range{fullRange()}, Mask: &maskNZ},
	}})
	bi.AddRead(Triple{Block: "q", Dims: []Dim{
		RangeDim(fullRange()),
		{Ranges: []symbolic.Range{fullRange()}, Mask: &maskZ},
	}})
	if Interferes(a, bi, nil) {
		t.Fatal("complementary masks should be disjoint")
	}

	// Same masks do interfere.
	var bd Descriptor
	bd.AddRead(Triple{Block: "q", Dims: []Dim{
		RangeDim(fullRange()),
		{Ranges: []symbolic.Range{fullRange()}, Mask: &maskNZ},
	}})
	if !Interferes(a, bd, nil) {
		t.Fatal("same-mask accesses must interfere")
	}
}

func TestPointVsMaskWithGuard(t *testing.T) {
	// Iteration-level: A writes q[1..n, col] guarded mask[col] != 0.
	// BI reads q[1..n, 1..n/(mask[*] == 0)]. Disjoint: instantiating
	// BI's mask at col contradicts A's guard.
	star := symbolic.Var(symbolic.Star)
	guard := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("mask", col), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	maskZ := Mask{Pred: symbolic.NewPred(
		symbolic.ElemAtom("mask", star), symbolic.EQ, symbolic.ExprAtom(symbolic.Const(0)))}

	var a, bi Descriptor
	a.AddWrite(writeColumn("q", col).WithGuard(guard))
	bi.AddRead(Triple{Block: "q", Dims: []Dim{
		RangeDim(fullRange()),
		{Ranges: []symbolic.Range{fullRange()}, Mask: &maskZ},
	}})
	if Interferes(a, bi, nil) {
		t.Fatal("guarded point vs complementary mask should be disjoint")
	}
}

func TestWholeBlockAccess(t *testing.T) {
	var a, b Descriptor
	a.AddWrite(ScalarTriple("q")) // whole array
	b.AddRead(writeColumn("q", col))
	if !Interferes(a, b, nil) {
		t.Fatal("whole-block write must interfere with any access")
	}
}

func TestFlowInterferesAsymmetry(t *testing.T) {
	var w, r Descriptor
	w.AddWrite(ScalarTriple("y"))
	r.AddRead(ScalarTriple("y"))
	if !FlowInterferes(w, r, nil) {
		t.Fatal("flow interference missed")
	}
	if FlowInterferes(r, w, nil) {
		t.Fatal("flow interference should be asymmetric")
	}
}

func TestIterationIndependenceViaContext(t *testing.T) {
	// The paper's independence test: iteration i vs iteration i' with
	// i != i' in the context.
	iP := symbolic.Var("i'.1")
	var a, b Descriptor
	a.AddWrite(Triple{Block: "q", Dims: []Dim{PointDim(i), RangeDim(fullRange())}})
	b.AddWrite(Triple{Block: "q", Dims: []Dim{PointDim(iP), RangeDim(fullRange())}})
	ctx := symbolic.Conj{symbolic.CmpExpr(i, symbolic.NE, iP)}
	if Interferes(a, b, ctx) {
		t.Fatal("distinct iterations interfere")
	}
	if !Interferes(a, b, nil) {
		t.Fatal("without context, iterations must conservatively interfere")
	}
}

func TestPromoteGuardToMask(t *testing.T) {
	// <miss[i] != 1> q[i, 1..10]  promoted over i in 1..10 becomes
	// q[1..10/(miss[*] != 1), 1..10].
	guard := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("miss", i), symbolic.NE, symbolic.ExprAtom(symbolic.Const(1)))}
	var d Descriptor
	d.AddWrite(Triple{
		Guard: guard,
		Block: "q",
		Dims:  []Dim{PointDim(i), RangeDim(symbolic.ConstRange(1, 10))},
	})
	p := Promote(d, "i.1", []symbolic.Range{symbolic.ConstRange(1, 10)})
	if len(p.Writes) != 1 {
		t.Fatalf("writes = %d", len(p.Writes))
	}
	w := p.Writes[0]
	if len(w.Guard) != 0 {
		t.Fatalf("guard survived promotion: %v", w.Guard)
	}
	if w.Dims[0].Mask == nil {
		t.Fatal("guard not converted to mask")
	}
	got := w.Dims[0].Mask.Pred.String()
	if got != "miss[*] != 1" {
		t.Fatalf("mask = %q", got)
	}
	lo, hi, ok := w.Dims[0].Ranges[0].IsConst()
	if !ok || lo != 1 || hi != 10 {
		t.Fatalf("promoted range = %v", w.Dims[0].Ranges[0])
	}
	// Second dimension untouched.
	if w.Dims[1].Mask != nil {
		t.Fatal("mask attached to wrong dimension")
	}
}

func TestPromoteAffineIndex(t *testing.T) {
	// Access q[i+1] over i in 1..n widens to q[2..n+1].
	var d Descriptor
	d.AddRead(Triple{Block: "q", Dims: []Dim{PointDim(i.AddConst(1))}})
	p := Promote(d, "i.1", []symbolic.Range{fullRange()})
	r := p.Reads[0].Dims[0].Ranges[0]
	if !r.Start.Equal(symbolic.Const(2)) || !r.End.Equal(n.AddConst(1)) {
		t.Fatalf("widened range = %v", r)
	}
}

func TestPromoteNegativeCoefficient(t *testing.T) {
	// Access q[n-i] over i in 1..n widens to q[0..n-1] (endpoints
	// swapped).
	var d Descriptor
	d.AddRead(Triple{Block: "q", Dims: []Dim{PointDim(n.Sub(i))}})
	p := Promote(d, "i.1", []symbolic.Range{fullRange()})
	r := p.Reads[0].Dims[0].Ranges[0]
	if !r.Start.Equal(symbolic.Const(0)) || !r.End.Equal(n.AddConst(-1)) {
		t.Fatalf("widened range = %v", r)
	}
}

func TestPromoteStride(t *testing.T) {
	// q[2i] over i in 1..n step 1 widens to a stride-2 range.
	var d Descriptor
	d.AddRead(Triple{Block: "q", Dims: []Dim{PointDim(i.Scale(2))}})
	p := Promote(d, "i.1", []symbolic.Range{fullRange()})
	r := p.Reads[0].Dims[0].Ranges[0]
	if r.Skip != 2 {
		t.Fatalf("skip = %d", r.Skip)
	}
}

func TestPromoteDiscontinuousSegments(t *testing.T) {
	a := symbolic.Var("a.1")
	segs := []symbolic.Range{
		symbolic.NewRange(symbolic.Const(1), a.AddConst(-1)),
		symbolic.NewRange(a.AddConst(1), n),
	}
	var d Descriptor
	d.AddWrite(Triple{Block: "x", Dims: []Dim{PointDim(i)}})
	p := Promote(d, "i.1", segs)
	if len(p.Writes[0].Dims[0].Ranges) != 2 {
		t.Fatalf("segments = %d", len(p.Writes[0].Dims[0].Ranges))
	}
	// The promoted descriptor is disjoint from column a.
	var ga Descriptor
	ga.AddWrite(Triple{Block: "x", Dims: []Dim{PointDim(a)}})
	if Interferes(p, ga, nil) {
		t.Fatal("discontinuous promotion should exclude a")
	}
}

func TestPromoteRangeEndpoint(t *testing.T) {
	// Read q[1..i] over i in 1..n widens to q[1..n].
	var d Descriptor
	d.AddRead(Triple{Block: "q", Dims: []Dim{RangeDim(symbolic.NewRange(symbolic.Const(1), i))}})
	p := Promote(d, "i.1", []symbolic.Range{fullRange()})
	r := p.Reads[0].Dims[0].Ranges[0]
	if !r.Start.Equal(symbolic.Const(1)) || !r.End.Equal(n) {
		t.Fatalf("widened = %v", r)
	}
}

func TestPromoteUnconvertibleGuardDropped(t *testing.T) {
	// A guard over iv with no affine point dimension must be dropped
	// (widening), not kept (which would be unsound).
	guard := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("miss", i), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	var d Descriptor
	d.AddWrite(Triple{Guard: guard, Block: "q",
		Dims: []Dim{RangeDim(symbolic.NewRange(symbolic.Const(1), i))}})
	p := Promote(d, "i.1", []symbolic.Range{fullRange()})
	if len(p.Writes[0].Guard) != 0 {
		t.Fatalf("guard kept: %v", p.Writes[0].Guard)
	}
	if p.Writes[0].Dims[0].Mask != nil {
		t.Fatal("mask attached to non-point dimension")
	}
}

func TestShiftIteration(t *testing.T) {
	var d Descriptor
	d.AddWrite(writeColumn("q", col))
	s := ShiftIteration(d, "col.1", 1)
	pt, ok := s.Writes[0].Dims[1].IsPoint()
	if !ok || !pt.Equal(col.AddConst(-1)) {
		t.Fatalf("shifted point = %v", pt)
	}
	// Shifted iteration must not interfere with the original column.
	if Interferes(d, s, nil) {
		t.Fatal("iteration i and i-1 write distinct columns")
	}
}

func TestDescriptorStringShape(t *testing.T) {
	var d Descriptor
	d.AddWrite(writeColumn("q", col))
	d.AddRead(ScalarTriple("x"))
	s := d.String()
	if !strings.Contains(s, "write:") || !strings.Contains(s, "read:") {
		t.Fatalf("String = %q", s)
	}
}

func TestMergeAndBlocks(t *testing.T) {
	var a, b Descriptor
	a.AddRead(ScalarTriple("x"))
	b.AddWrite(ScalarTriple("y"))
	a.Merge(b)
	blocks := a.Blocks()
	if !blocks["x"] || !blocks["y"] || len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	if a.Empty() {
		t.Fatal("merged descriptor reported empty")
	}
	if !(Descriptor{}).Empty() {
		t.Fatal("zero descriptor not empty")
	}
}

func TestSubstDescriptor(t *testing.T) {
	var d Descriptor
	d.AddWrite(writeColumn("q", col))
	s := d.Subst("col.1", symbolic.Const(7))
	pt, _ := s.Writes[0].Dims[1].IsPoint()
	if !pt.Equal(symbolic.Const(7)) {
		t.Fatalf("subst = %v", pt)
	}
	// Original untouched.
	pt0, _ := d.Writes[0].Dims[1].IsPoint()
	if !pt0.Equal(col) {
		t.Fatal("original descriptor mutated")
	}
}

func TestPromoteGuardMasksEveryIndexedDim(t *testing.T) {
	// Access q(i, i) under guard mask[i] != 0: after promotion BOTH
	// dimensions carry the mask, so either dimension can prove
	// disjointness against a complementary access. (Regression: the
	// mask used to attach only to the first dimension.)
	guard := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("mask", i), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	var d Descriptor
	d.AddRead(Triple{Guard: guard, Block: "q", Dims: []Dim{PointDim(i), PointDim(i)}})
	p := Promote(d, "i.1", []symbolic.Range{fullRange()})
	r := p.Reads[0]
	if r.Dims[0].Mask == nil || r.Dims[1].Mask == nil {
		t.Fatalf("both dims should carry the mask: %s", r)
	}
	// Disjoint from a write masked with the complement on dimension 2.
	star := symbolic.Var(symbolic.Star)
	maskZ := Mask{Pred: symbolic.NewPred(
		symbolic.ElemAtom("mask", star), symbolic.EQ, symbolic.ExprAtom(symbolic.Const(0)))}
	var w Descriptor
	w.AddWrite(Triple{Block: "q", Dims: []Dim{
		RangeDim(fullRange()),
		{Ranges: []symbolic.Range{fullRange()}, Mask: &maskZ},
	}})
	if Interferes(p, w, nil) {
		t.Fatal("complementary mask on dim 2 should give disjointness")
	}
}

func TestPromoteGuardSkipsMaskedDim(t *testing.T) {
	// A dimension that already carries a mask keeps it.
	star := symbolic.Var(symbolic.Star)
	pre := Mask{Pred: symbolic.NewPred(
		symbolic.ElemAtom("flag", star), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	guard := symbolic.Conj{symbolic.NewPred(
		symbolic.ElemAtom("mask", i), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))}
	var d Descriptor
	d.AddWrite(Triple{Guard: guard, Block: "q", Dims: []Dim{
		{Ranges: []symbolic.Range{symbolic.Point(i)}, Mask: &pre},
		PointDim(i),
	}})
	p := Promote(d, "i.1", []symbolic.Range{fullRange()})
	w := p.Writes[0]
	if w.Dims[0].Mask == nil || !strings.Contains(w.Dims[0].Mask.String(), "flag") {
		t.Fatalf("pre-existing mask lost: %s", w)
	}
	if w.Dims[1].Mask == nil || !strings.Contains(w.Dims[1].Mask.String(), "mask") {
		t.Fatalf("guard not attached to free dim: %s", w)
	}
}
