package descriptor

import "orchestra/internal/symbolic"

// Promote widens a descriptor computed for one iteration of a loop into
// a descriptor for the entire loop (§3.2): the induction variable "is
// promoted to be its entire range", and guards that mention the
// induction variable are converted into masks across the dimensions it
// indexes — the paper's example turns
//
//	write: <miss[i] != 1> q[i, 1..10]
//
// into
//
//	write: q[1..10/(miss[*] != 1), 1..10].
//
// Guards that cannot be converted are dropped, which widens the
// descriptor and is therefore conservative. iv is the induction
// variable's SSA name; segments its iteration ranges (more than one for
// a discontinuous loop).
func Promote(d Descriptor, iv symbolic.Name, segments []symbolic.Range) Descriptor {
	out := Descriptor{}
	for _, t := range d.Reads {
		if t.Guard.ProvesFalse() {
			continue // the access provably never occurs
		}
		out.Reads = append(out.Reads, promoteTriple(t, iv, segments))
	}
	for _, t := range d.Writes {
		if t.Guard.ProvesFalse() {
			continue
		}
		out.Writes = append(out.Writes, promoteTriple(t, iv, segments))
	}
	return out
}

func promoteTriple(t Triple, iv symbolic.Name, segments []symbolic.Range) Triple {
	out := Triple{Block: t.Block, Dims: append([]Dim(nil), t.Dims...)}

	// Split the guard: predicates free of iv survive; predicates using
	// iv become masks when a dimension is indexed affinely (coefficient
	// ±1) by iv, and are dropped otherwise.
	for _, p := range t.Guard {
		if !p.Uses(iv) {
			out.Guard = out.Guard.And(p)
			continue
		}
		// Attach the guard as a mask on EVERY dimension the induction
		// variable indexes affinely (an access like q(i, i) under a
		// guard on i is restricted in both dimensions); dimensions
		// already carrying a mask keep it, and guards with no eligible
		// dimension are dropped (widening, hence conservative).
		for j, dim := range out.Dims {
			if dim.Mask != nil {
				continue // one mask per dimension
			}
			idx, ok := dim.IsPoint()
			if !ok {
				continue
			}
			coef := idx.Coef(iv)
			if coef != 1 && coef != -1 {
				continue
			}
			// idx = coef*iv + rest, so iv = coef*(Star - rest).
			rest := idx.Sub(symbolic.Term(iv, coef))
			sol := symbolic.Var(symbolic.Star).Sub(rest).Scale(coef)
			mask := Mask{Pred: p.Subst(iv, sol)}
			out.Dims[j].Mask = &mask
		}
	}

	// Widen every dimension over the iteration segments.
	for j, dim := range out.Dims {
		out.Dims[j] = widenDim(dim, iv, segments)
	}
	return out
}

// widenDim replaces occurrences of iv in a dimension's ranges by the
// loop's iteration segments, producing a superset of the accessed
// indices.
func widenDim(d Dim, iv symbolic.Name, segments []symbolic.Range) Dim {
	if !d.Uses(iv) {
		return d
	}
	// A mask whose predicate still references iv (not via Star) cannot
	// be preserved soundly; drop it (superset).
	mask := d.Mask
	if mask != nil && mask.Pred.Uses(iv) {
		mask = nil
	}
	out := Dim{Mask: mask}
	for _, r := range d.Ranges {
		if !r.Uses(iv) {
			out.Ranges = append(out.Ranges, r)
			continue
		}
		if p, ok := r.IsPoint(); ok {
			coef := p.Coef(iv)
			if coef != 0 {
				// p = coef*iv + rest over iv in each segment.
				for _, seg := range segments {
					lo := p.Subst(iv, seg.Start)
					hi := p.Subst(iv, seg.End)
					if coef < 0 {
						lo, hi = hi, lo
					}
					skip := seg.Skip * abs(coef)
					if skip < 1 {
						skip = 1
					}
					out.Ranges = append(out.Ranges, symbolic.Range{Start: lo, End: hi, Skip: skip})
				}
				continue
			}
		}
		// General range [A(iv), B(iv)]: widen each endpoint to its
		// extreme over the hull of the segments (conservative; stride
		// information is lost).
		hullLo, hullHi := segments[0].Start, segments[len(segments)-1].End
		start := substExtreme(r.Start, iv, hullLo, hullHi, false)
		end := substExtreme(r.End, iv, hullLo, hullHi, true)
		out.Ranges = append(out.Ranges, symbolic.NewRange(start, end))
	}
	return out
}

// substExtreme substitutes iv by whichever bound extremizes the affine
// expression: the minimum when maximize is false, the maximum otherwise.
func substExtreme(e symbolic.Expr, iv symbolic.Name, lo, hi symbolic.Expr, maximize bool) symbolic.Expr {
	coef := e.Coef(iv)
	pickHi := (coef >= 0) == maximize
	if pickHi {
		return e.Subst(iv, hi)
	}
	return e.Subst(iv, lo)
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// ShiftIteration returns the descriptor for iteration iv-delta given
// the descriptor for iteration iv — the substitution the pipelining
// transformation applies to test a loop body against its previous
// iteration (§3.3.2).
func ShiftIteration(d Descriptor, iv symbolic.Name, delta int64) Descriptor {
	return d.Subst(iv, symbolic.Var(iv).AddConst(-delta))
}
