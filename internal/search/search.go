package search

import (
	"fmt"
	"sort"
)

// DefaultEpsilon is the adoption margin: a transformation is applied
// only when it improves the validated makespan by more than this
// fraction over a less-transformed alternative. The margin is the
// "profitable subset" rule — near-ties go to the simpler program,
// which is how one-worker runs end up unsplit (nothing overlaps, so
// the split graph's extra operators and delivery bookkeeping buy
// nothing measurable).
const DefaultEpsilon = 0.03

// DefaultTopK is how many model-ranked finalists get validated.
const DefaultTopK = 8

// Options parameterizes a search.
type Options struct {
	// P is the worker count being planned for (default: the profiling
	// run's).
	P int
	// Omega is the planned run's TAPER override (default: the
	// profile's).
	Omega float64
	// Epsilon overrides the adoption margin (default DefaultEpsilon).
	Epsilon float64
	// TopK overrides how many finalists are validated (default
	// DefaultTopK; the least- and most-transformed candidates are
	// always validated as controls).
	TopK int
	// Parts maps a phase that candidates may keep sequential to the
	// profiled part operators covering it (from the application's
	// rewrite metadata); nil for raw-graph spaces.
	Parts map[string][]string
	// Validate measures a finalist, returning its makespan in profile
	// time units. Nil uses the calibrated simulator dry-run
	// (Model.DryRun); benchmarks may substitute a measured run.
	Validate func(Candidate) (float64, error)
}

// Score is one candidate's outcome.
type Score struct {
	ID     string  `json:"id"`
	Degree int     `json:"degree"`
	Model  float64 `json:"model"`
	// Validated is the dry-run (or measured) makespan; 0 when the
	// candidate was not a finalist.
	Validated float64 `json:"validated,omitempty"`
	Chosen    bool    `json:"chosen,omitempty"`
}

// Plan is the search result: the emitted graph plus the evidence that
// chose it.
type Plan struct {
	Best   Candidate
	Scores []Score // model-ranked order
}

// Run searches the candidate space against a profile: rank every
// candidate with the calibrated finishing-time model, validate the
// finalists (simulator dry-run by default), and pick the
// least-transformed candidate within Epsilon of the best validated
// makespan.
func Run(prof *Profile, cands []Candidate, opt Options) (*Plan, error) {
	if prof == nil {
		return nil, fmt.Errorf("search: nil profile")
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("search: empty candidate space")
	}
	eps := opt.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	topK := opt.TopK
	if topK <= 0 {
		topK = DefaultTopK
	}
	m := &Model{Prof: prof, P: opt.P, Omega: opt.Omega, Parts: opt.Parts}

	// Model pass over the full space.
	type scored struct {
		c   Candidate
		est float64
	}
	var ok []scored
	for _, c := range cands {
		est, err := m.Estimate(c.Graph)
		if err != nil {
			continue
		}
		ok = append(ok, scored{c, est})
	}
	if len(ok) == 0 {
		return nil, fmt.Errorf("search: no candidate is covered by the profile")
	}
	cs := make([]Candidate, len(ok))
	est := make([]float64, len(ok))
	for i, s := range ok {
		cs[i], est[i] = s.c, s.est
	}
	order := rank(cs, est)

	// Finalists: the model's top K plus the least- and
	// most-transformed candidates as controls.
	finalist := map[int]bool{}
	for i := 0; i < len(order) && i < topK; i++ {
		finalist[order[i]] = true
	}
	lo, hi := 0, 0
	for i := range cs {
		if cs[i].Degree < cs[lo].Degree || (cs[i].Degree == cs[lo].Degree && cs[i].ID < cs[lo].ID) {
			lo = i
		}
		if cs[i].Degree > cs[hi].Degree || (cs[i].Degree == cs[hi].Degree && cs[i].ID < cs[hi].ID) {
			hi = i
		}
	}
	finalist[lo], finalist[hi] = true, true

	validate := opt.Validate
	if validate == nil {
		validate = func(c Candidate) (float64, error) { return m.DryRun(c.Graph) }
	}
	val := make([]float64, len(cs))
	for i := range cs {
		if !finalist[i] {
			continue
		}
		v, err := validate(cs[i])
		if err != nil || v <= 0 {
			finalist[i] = false
			continue
		}
		val[i] = v
	}

	// Adoption: the least-transformed finalist within epsilon of the
	// best validated makespan.
	bestVal := 0.0
	for i := range cs {
		if finalist[i] && (bestVal == 0 || val[i] < bestVal) {
			bestVal = val[i]
		}
	}
	if bestVal == 0 {
		return nil, fmt.Errorf("search: every finalist failed validation")
	}
	var fin []int
	for i := range cs {
		if finalist[i] {
			fin = append(fin, i)
		}
	}
	sort.Slice(fin, func(a, b int) bool {
		i, j := fin[a], fin[b]
		if cs[i].Degree != cs[j].Degree {
			return cs[i].Degree < cs[j].Degree
		}
		if val[i] != val[j] {
			return val[i] < val[j]
		}
		return cs[i].ID < cs[j].ID
	})
	chosen := fin[0]
	for _, i := range fin {
		if val[i] <= bestVal*(1+eps) {
			chosen = i
			break
		}
	}

	plan := &Plan{Best: cs[chosen]}
	for _, i := range order {
		plan.Scores = append(plan.Scores, Score{
			ID: cs[i].ID, Degree: cs[i].Degree, Model: est[i],
			Validated: val[i], Chosen: i == chosen,
		})
	}
	return plan, nil
}
