package search

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// originOf adapts an application's part metadata to the search Origin.
func originOf(app *workload.App) Origin {
	return func(part string) string {
		if p, ok := app.PartOrigin(part); ok {
			return p.Phase
		}
		return part
	}
}

// partsOf builds the phase → part-operators map the model needs to
// pool statistics for merged phases.
func partsOf(app *workload.App) map[string][]string {
	out := map[string][]string{}
	for _, nd := range app.SplitGraph.Nodes {
		if p, ok := app.PartOrigin(nd.Name); ok && p.Phase != nd.Name {
			out[p.Phase] = append(out[p.Phase], nd.Name)
		}
	}
	return out
}

// profileApp runs the application's fully split graph on the simulator
// with tracing and distills the profile, the way orchrun -autosplit
// does.
func profileApp(t *testing.T, app *workload.App, p int) *Profile {
	t.Helper()
	cfg := machine.DefaultConfig(p)
	var col obs.Collector
	if _, err := rts.RunGraph(cfg, app.SplitGraph, app.Bind, rts.RunOpts{
		Processors: p, Mode: rts.ModeSplit, Sink: &col,
	}); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	prof, err := FromTrace(col.Trace, 0)
	if err != nil {
		t.Fatalf("FromTrace: %v", err)
	}
	return prof
}

func TestFromTraceCoversSplitOperators(t *testing.T) {
	app := workload.Psirrfan(workload.Config{N: 512, Seed: 7})
	prof := profileApp(t, app, 4)
	total := 0
	for _, nd := range app.SplitGraph.Nodes {
		op := prof.Op(nd.Name)
		if op == nil || op.Tasks == 0 {
			t.Fatalf("profile missing operator %q", nd.Name)
		}
		total += op.Tasks
	}
	// projPre+projI and outI+outD each cover n tasks; update covers n.
	if want := 3 * 512; total != want {
		t.Fatalf("profiled %d tasks, want %d", total, want)
	}
	if prof.ChunkOverhead <= 0 {
		t.Fatalf("expected a positive measured chunk overhead, got %g", prof.ChunkOverhead)
	}
}

func TestMergedPoolsExactly(t *testing.T) {
	// Two parts with known per-sample statistics: pooled mean/variance
	// must equal the union's.
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 12}
	mk := func(name string, xs []float64) *OpProfile {
		mu, m2 := 0.0, 0.0
		for i, x := range xs {
			d := x - mu
			mu += d / float64(i+1)
			m2 += d * (x - mu)
		}
		return &OpProfile{Name: name, Tasks: len(xs), Mu: mu, Sigma: math.Sqrt(m2 / float64(len(xs)))}
	}
	got := Merged("all", mk("a", a), mk("b", b))
	want := mk("all", append(append([]float64{}, a...), b...))
	if math.Abs(got.Mu-want.Mu) > 1e-12 || math.Abs(got.Sigma-want.Sigma) > 1e-12 {
		t.Fatalf("pooled (μ=%g σ=%g), want (μ=%g σ=%g)", got.Mu, got.Sigma, want.Mu, want.Sigma)
	}
}

func TestHybridCandidatesPsirrfan(t *testing.T) {
	app := workload.Psirrfan(workload.Config{N: 256, Seed: 1})
	cands, err := HybridCandidates(app.SeqGraph, app.SplitGraph, originOf(app))
	if err != nil {
		t.Fatal(err)
	}
	// Structural space: ∅ (seq), {proj}, {output}, {proj,output}
	// (split). The update→outD pipelined edge survives in {output} and
	// {proj,output}, each contributing an extra no-pipe variant: 6.
	if len(cands) != 6 {
		for _, c := range cands {
			t.Logf("  %s (degree %d)", c.ID, c.Degree)
		}
		t.Fatalf("psirrfan hybrid space has %d candidates, want 6", len(cands))
	}
	byID := map[string]Candidate{}
	for _, c := range cands {
		byID[c.ID] = c
	}
	seq, ok := byID["seq"]
	if !ok {
		t.Fatal("no seq candidate")
	}
	if seq.Graph != app.SeqGraph || seq.Degree != 0 {
		t.Fatalf("seq candidate should be the literal sequential graph at degree 0")
	}
	split, ok := byID["split"]
	if !ok {
		t.Fatal("no split candidate")
	}
	if split.Graph != app.SplitGraph {
		t.Fatal("split candidate should be the literal split graph")
	}

	// The proj-only hybrid keeps projPre/projI but merges the output
	// phase back; its edges into the merged operator lose pipelining.
	h, ok := byID["split[proj]"]
	if !ok {
		t.Fatal("no split[proj] candidate")
	}
	wantNodes := []string{"projPre", "projI", "update", "output"}
	if len(h.Graph.Nodes) != len(wantNodes) {
		t.Fatalf("split[proj] has %d nodes, want %d", len(h.Graph.Nodes), len(wantNodes))
	}
	for _, n := range wantNodes {
		if h.Graph.Node(n) == nil {
			t.Fatalf("split[proj] missing node %q", n)
		}
	}
	for _, e := range h.Graph.Edges {
		if e.To == "output" && (e.Pipelined || e.Chain) {
			t.Fatalf("edge %s>%s into merged phase kept scheduling attributes", e.From, e.To)
		}
	}
	if err := h.Graph.Validate(); err != nil {
		t.Fatalf("split[proj] does not validate: %v", err)
	}

	// The output-only hybrid merges proj back; update still pipes into
	// outD, so its no-pipe ablation must exist too.
	h2, ok := byID["split[output]"]
	if !ok {
		t.Fatal("no split[output] candidate")
	}
	pipelined := 0
	for _, e := range h2.Graph.Edges {
		if e.Pipelined {
			pipelined++
		}
	}
	if pipelined != 1 {
		t.Fatalf("split[output] keeps %d pipelined edges, want 1", pipelined)
	}
	if _, ok := byID["split[output]-nopipe[update>outD]"]; !ok {
		t.Fatal("missing the no-pipe ablation of split[output]")
	}
}

func TestGraphCandidatesOnlyWeaken(t *testing.T) {
	app := workload.EMU(workload.Config{N: 128, Seed: 3})
	cands := GraphCandidates(app.SplitGraph)
	if len(cands) < 2 {
		t.Fatalf("expected the as-is graph plus at least one weakening, got %d", len(cands))
	}
	for _, c := range cands {
		if len(c.Graph.Nodes) != len(app.SplitGraph.Nodes) || len(c.Graph.Edges) != len(app.SplitGraph.Edges) {
			t.Fatalf("%s changed the node or edge set", c.ID)
		}
		for i, e := range c.Graph.Edges {
			orig := app.SplitGraph.Edges[i]
			if e.Pipelined && !orig.Pipelined || e.Chain && !orig.Chain {
				t.Fatalf("%s strengthened edge %s>%s", c.ID, e.From, e.To)
			}
		}
	}
}

// TestSearchKeepsSeqOnOneWorker is the regression the hotpath benchmark
// demanded: with one worker nothing overlaps, so the profitable subset
// of the split transformation is empty and the search must emit the
// sequential program rather than pay the split graph's bookkeeping.
func TestSearchKeepsSeqOnOneWorker(t *testing.T) {
	app := workload.Psirrfan(workload.Config{N: 1024, Seed: 11})
	prof := profileApp(t, app, 1)
	cands, err := HybridCandidates(app.SeqGraph, app.SplitGraph, originOf(app))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Run(prof, cands, Options{P: 1, Parts: partsOf(app)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best.ID != "seq" {
		for _, s := range plan.Scores {
			t.Logf("  %-40s degree=%d model=%.3f validated=%.3f chosen=%v", s.ID, s.Degree, s.Model, s.Validated, s.Chosen)
		}
		t.Fatalf("one-worker psirrfan search chose %q, want the sequential program", plan.Best.ID)
	}
}

// TestSearchAdoptsSplitWhenProfitable: with enough workers the split
// transformation's overlap pays for itself — on climate at 32 workers
// the dry-run gain is ~12%, far past the adoption margin — and the
// search must not flatten the program back to the phase chain.
func TestSearchAdoptsSplitWhenProfitable(t *testing.T) {
	app := workload.Climate(workload.Config{N: 1024, Seed: 11})
	prof := profileApp(t, app, 32)
	cands, err := HybridCandidates(app.SeqGraph, app.SplitGraph, originOf(app))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Run(prof, cands, Options{P: 32, Parts: partsOf(app)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best.Degree == 0 {
		for _, s := range plan.Scores {
			t.Logf("  %-40s degree=%d model=%.3f validated=%.3f chosen=%v", s.ID, s.Degree, s.Model, s.Validated, s.Chosen)
		}
		t.Fatalf("32-worker climate search chose %q; expected some of the transformation to survive", plan.Best.ID)
	}
}

// TestSearchGoldenReplay pins the searched plan for every workload at
// representative worker counts. The profiles are deterministic
// simulator runs, so a change here means the candidate space, the
// calibrated model or the adoption rule changed — review, then
// regenerate with -update.
func TestSearchGoldenReplay(t *testing.T) {
	got := map[string]string{}
	for _, app := range workload.All(1024, 11) {
		for _, p := range []int{1, 16, 64} {
			prof := profileApp(t, app, p)
			cands, err := HybridCandidates(app.SeqGraph, app.SplitGraph, originOf(app))
			if err != nil {
				t.Fatal(err)
			}
			plan, err := Run(prof, cands, Options{P: p, Parts: partsOf(app)})
			if err != nil {
				t.Fatalf("%s p=%d: %v", app.Name, p, err)
			}
			got[fmt.Sprintf("%s/p%d", app.Name, p)] = plan.Best.ID
		}
	}
	path := filepath.Join("testdata", "plans.golden.json")
	if *update {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s: searched plan %q, golden %q", k, got[k], w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: not in golden (regenerate with -update)", k)
		}
	}
}
