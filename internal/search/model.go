package search

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/stats"
)

// Model ranks candidate graphs with the paper's finishing-time
// estimate (equation 1), calibrated by a profiling run: per-operator
// μ/σ come from the measured trace, the per-chunk scheduling overhead
// from the run's measured (p·makespan − busy)/chunks, and the TAPER
// confidence width ω from the run's actual override. Operators the
// profile knows only as split parts are pooled (Merged) when a
// candidate keeps their phase sequential.
type Model struct {
	Prof *Profile
	// P is the worker count the estimate targets (defaults to the
	// profiling run's).
	P int
	// Omega is the TAPER override of the run being planned (defaults
	// to the profile's).
	Omega float64
	// Parts maps a phase that a candidate may keep sequential to the
	// profiled part operators that cover it; filled by the caller from
	// the application's rewrite metadata (nil for raw-graph spaces,
	// where every candidate keeps the profiled node set).
	Parts map[string][]string
}

// Cfg returns the calibrated machine model: the default simulated
// machine for p processors with the scheduling overhead replaced by
// the measured per-chunk cost and the communication terms scaled to
// the same time unit. A wall-clock profile (unit "s") zeroes the
// simulated per-byte network cost — the native backend moves no
// modelled messages — while per-chunk and per-batch costs keep their
// measured values.
func (m *Model) Cfg() machine.Config {
	cfg := machine.DefaultConfig(m.procs())
	if m.Prof.ChunkOverhead > 0 {
		cfg.SchedOverhead = m.Prof.ChunkOverhead
		// A pipelined delivery batch costs about one scheduling event:
		// natively a release, in the simulator a message.
		cfg.MsgOverhead = m.Prof.ChunkOverhead
		cfg.HopLatency = 0
	}
	if m.Prof.Unit == "s" {
		cfg.ByteCost = 0
	}
	return cfg
}

func (m *Model) procs() int {
	if m.P > 0 {
		return m.P
	}
	if m.Prof.Processors > 0 {
		return m.Prof.Processors
	}
	return 1
}

func (m *Model) omega() float64 {
	if m.Omega > 0 {
		return m.Omega
	}
	return m.Prof.Omega
}

// spec builds the calibrated OpSpec for an operator of a candidate
// graph: measured statistics when the profile saw the operator itself,
// pooled part statistics when the candidate merged a rewritten phase
// back together.
func (m *Model) spec(name string) (rts.OpSpec, error) {
	op := m.Prof.Op(name)
	if op == nil {
		if parts := m.Parts[name]; len(parts) > 0 {
			ps := make([]*OpProfile, 0, len(parts))
			for _, q := range parts {
				if qp := m.Prof.Op(q); qp != nil {
					ps = append(ps, qp)
				}
			}
			if len(ps) > 0 {
				op = Merged(name, ps...)
			}
		}
	}
	if op == nil || op.Tasks == 0 {
		return rts.OpSpec{}, fmt.Errorf("search: operator %q not covered by the profile", name)
	}
	return rts.OpSpec{
		Op: sched.Op{Name: name, N: op.Tasks},
		Mu: op.Mu, Sigma: op.Sigma,
	}, nil
}

// declaredZeroTasks reports whether a graph node's tasks annotation
// literally declares zero tasks. Symbolic annotations ("n") stay
// opaque and fall through to profile coverage.
func declaredZeroTasks(nd *delirium.Node) bool {
	n, err := strconv.Atoi(nd.Tasks)
	return err == nil && n == 0
}

// nodeSpec resolves a candidate graph node. An operator the graph
// declares with zero tasks executes nothing and therefore never emits
// a chunk event — it is structurally absent from every profile, not
// uncovered, so it estimates as a zero spec instead of failing the
// candidate (which would fail the whole search, since every candidate
// shares the node set).
func (m *Model) nodeSpec(nd *delirium.Node) (rts.OpSpec, error) {
	if declaredZeroTasks(nd) {
		return rts.OpSpec{Op: sched.Op{Name: nd.Name, N: 0}}, nil
	}
	return m.spec(nd.Name)
}

// Estimate predicts the candidate graph's makespan in profile time
// units: an earliest-start/finish pass over the DAG where each level
// shares the processors by the paper's iterative allocation, pipelined
// edges release consumers after one delivery batch instead of at
// producer completion, and the whole estimate is floored by the
// work-conservation bound total-work/p plus the measured per-chunk
// overhead. The floor is what makes a transformation with nothing to
// overlap (one worker, inflated part work) rank below keep-sequential.
func (m *Model) Estimate(g *delirium.Graph) (float64, error) {
	p := m.procs()
	omega := m.omega()
	cfg := m.Cfg()

	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	specs := map[string]rts.OpSpec{}
	alloc := map[string]int{}
	for _, lvl := range levels {
		lspecs := make([]rts.OpSpec, 0, len(lvl))
		names := make([]string, 0, len(lvl))
		for _, nd := range lvl {
			s, err := m.nodeSpec(nd)
			if err != nil {
				return 0, err
			}
			specs[nd.Name] = s
			lspecs = append(lspecs, s)
			names = append(names, nd.Name)
		}
		shares := rts.AllocateManyOmega(cfg, lspecs, p, omega, nil, names...)
		for i, nd := range lvl {
			alloc[nd.Name] = shares[i]
		}
	}

	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := map[string]float64{}
	start := map[string]float64{}
	totalWork, totalChunks := 0.0, 0
	for _, nd := range order {
		s := specs[nd.Name]
		pv := alloc[nd.Name]
		if pv < 1 {
			pv = 1
		}
		st := 0.0
		for _, e := range g.InEdges(nd.Name) {
			if e.Carried {
				continue
			}
			var ready float64
			if e.Pipelined {
				// The consumer ramps up after the producer's first
				// delivery batch (the pipeline fill), not after the
				// producer completes.
				prod := specs[e.From]
				pp := alloc[e.From]
				if pp < 1 {
					pp = 1
				}
				batch := rts.ChoosePairGranularityOmega(cfg, prod, pp, prod.Op.Bytes, omega)
				ready = start[e.From] + float64(batch)*prod.Mu/float64(pp) + cfg.MsgOverhead
			} else {
				ready = finish[e.From]
			}
			if ready > st {
				st = ready
			}
		}
		est := rts.FinishEstimateOmega(cfg, s, pv, omega)
		start[nd.Name] = st
		finish[nd.Name] = st + est.Total()
		totalWork += float64(s.Op.N) * s.Mu
		totalChunks += rts.PredictChunksOmega(s.Op.N, pv, cvOf(s), omega)
	}

	span := 0.0
	for _, f := range finish {
		if f > span {
			span = f
		}
	}
	// Work conservation plus per-chunk overhead: no schedule beats it,
	// and candidates that inflate total work or chunk count pay here
	// even when their critical path looks short.
	floor := totalWork/float64(p) + float64(totalChunks)*cfg.SchedOverhead/float64(p)
	if floor > span {
		span = floor
	}
	return span, nil
}

func cvOf(s rts.OpSpec) float64 {
	if s.Mu <= 0 {
		return 0
	}
	return s.Sigma / s.Mu
}

// DryRun validates a candidate on the discrete-event simulator under
// the calibrated machine model: per-task times are reconstructed as a
// seeded log-normal stream with the operator's measured μ/σ, and the
// graph runs in split mode with the planned worker count and ω. The
// returned makespan is in profile time units.
func (m *Model) DryRun(g *delirium.Graph) (float64, error) {
	cfg := m.Cfg()
	// Zero-task operators are structurally absent from the profile; the
	// dry run gives them an empty op rather than failing the bind.
	zeroTask := map[string]bool{}
	for _, nd := range g.Nodes {
		if declaredZeroTasks(nd) {
			zeroTask[nd.Name] = true
		}
	}
	bindErr := error(nil)
	bind := func(name string) rts.OpSpec {
		if zeroTask[name] {
			return rts.OpSpec{Op: sched.Op{Name: name, N: 0}}
		}
		s, err := m.spec(name)
		if err != nil {
			bindErr = err
			return rts.OpSpec{Op: sched.Op{Name: name, N: 1, Time: func(int) float64 { return 0 }}}
		}
		n := s.Op.N
		mu, sigma := s.Mu, s.Sigma
		times := make([]float64, n)
		if mu > 0 && sigma > 0 {
			// Log-normal with the measured mean and variance.
			s2 := math.Log(1 + (sigma*sigma)/(mu*mu))
			lmu := math.Log(mu) - s2/2
			rng := stats.NewRNG(0x5ea8c4 ^ hash64(name))
			for i := range times {
				times[i] = rng.LogNormal(lmu, math.Sqrt(s2))
			}
		} else {
			for i := range times {
				times[i] = mu
			}
		}
		t := times
		s.Op.Time = func(i int) float64 { return t[i] }
		s.Op.Bytes = 64
		s.SetupBytes = 0
		return s
	}
	res, err := rts.RunGraph(cfg, g, bind, rts.RunOpts{
		Processors: m.procs(), Mode: rts.ModeSplit, Omega: m.omega(),
	})
	if err != nil {
		return 0, err
	}
	if bindErr != nil {
		return 0, bindErr
	}
	return res.Makespan, nil
}

// hash64 is FNV-1a over a string.
func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// rank orders candidate indices by model estimate, ties toward lower
// transformation degree, then by ID for determinism.
func rank(cands []Candidate, est []float64) []int {
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if est[i] != est[j] {
			return est[i] < est[j]
		}
		if cands[i].Degree != cands[j].Degree {
			return cands[i].Degree < cands[j].Degree
		}
		return cands[i].ID < cands[j].ID
	})
	return idx
}
