// Package search implements profile-guided split search: given the
// obs trace of a profiling run of a program's fully split graph, it
// enumerates the hybrid programs between keep-everything-sequential
// and split-everything — per-phase rewrite on/off, per-edge pipelining
// and chaining on/off — ranks them with the paper's finishing-time
// estimate (equation 1) calibrated by the measured statistics,
// validates the finalists against a simulator dry-run, and emits only
// the profitable subset of the transformation as a concrete
// delirium.Graph.
//
// The paper applies the split transformation wholesale; the hotpath
// benchmark showed why that is wrong (TAPER+split ≈1.7× slower than
// plain TAPER on one-worker psirrfan). Bone, Somogyi & Schachte's
// feedback-directed automatic parallelization closes the same loop —
// measured profiles plus a cost model decide which parallelizations
// pay for themselves — and this package is that loop for the split
// transformation: profile once, search, re-run the searched program.
package search

import (
	"fmt"
	"math"

	"orchestra/internal/obs"
)

// OpProfile is one operator's measured behaviour in the profiling run.
type OpProfile struct {
	Name string `json:"name"`
	// Tasks is the number of tasks the operator executed.
	Tasks int `json:"tasks"`
	// Chunks is how many scheduler chunks the tasks arrived in.
	Chunks int `json:"chunks"`
	// Busy is the summed span of the operator's chunks (profile time
	// units).
	Busy float64 `json:"busy"`
	// Mu and Sigma are the measured per-task statistics: the TAPER
	// policy's final online estimate when the trace carries one, else
	// the chunk-level mean (with σ estimated across chunk means).
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// Cv is the measured coefficient of variation.
func (o *OpProfile) Cv() float64 {
	if o.Mu <= 0 {
		return 0
	}
	return o.Sigma / o.Mu
}

// Profile summarizes a profiling run for the search: per-operator
// measured statistics plus run-level calibration terms.
type Profile struct {
	Ops map[string]*OpProfile `json:"ops"`
	// Processors, Makespan and Unit describe the profiling run itself.
	Processors int     `json:"processors"`
	Makespan   float64 `json:"makespan"`
	Unit       string  `json:"unit"`
	// Omega is the TAPER confidence-width override the profiling run
	// executed under (0 = policy default); the search estimates with
	// the same effective ω so it models the scheduler that will run.
	Omega float64 `json:"omega"`
	// ChunkOverhead is the run's measured per-chunk scheduling cost:
	// (p·makespan − Σ busy) / chunks. It folds chunk dispatch, gate
	// bookkeeping and residual idle together — a deliberately
	// pessimistic per-chunk price that makes transformations with no
	// overlap to win (one worker, say) rank below keep-sequential.
	ChunkOverhead float64 `json:"chunk_overhead"`
	// Chunks and Batches are run totals.
	Chunks  int `json:"chunks"`
	Batches int `json:"batches"`
}

// FromTrace distills a profiling run's trace into a Profile. omega is
// the RunOpts.Omega the run executed under.
func FromTrace(tr *obs.Trace, omega float64) (*Profile, error) {
	if tr == nil {
		return nil, fmt.Errorf("search: nil profiling trace")
	}
	p := &Profile{
		Ops:        map[string]*OpProfile{},
		Processors: tr.Result.Processors,
		Makespan:   tr.Result.Makespan,
		Unit:       tr.Unit,
		Omega:      omega,
		Chunks:     tr.Result.Chunks,
		Batches:    tr.Result.Messages,
	}
	type acc struct {
		tasks, chunks int
		busy          float64
		// chunk-mean dispersion fallback for σ
		mean, m2 float64
		nMeans   int
		// latest TAPER online estimate and its sample count
		taperN         int
		taperMu, taperSigma float64
	}
	accs := map[string]*acc{}
	get := func(op int32) *acc {
		name := tr.OpName(op)
		a := accs[name]
		if a == nil {
			a = &acc{}
			accs[name] = a
		}
		return a
	}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case obs.KindChunk:
			a := get(ev.Op)
			k := int(ev.N)
			a.tasks += k
			a.chunks++
			a.busy += ev.T1 - ev.T0
			if k > 0 {
				m := (ev.T1 - ev.T0) / float64(k)
				a.nMeans++
				d := m - a.mean
				a.mean += d / float64(a.nMeans)
				a.m2 += d * (m - a.mean)
			}
		case obs.KindTaper:
			a := get(ev.Op)
			if int(ev.Arg) >= a.taperN {
				a.taperN = int(ev.Arg)
				a.taperMu, a.taperSigma = ev.V0, ev.V1
			}
		}
	}
	totalBusy := 0.0
	for name, a := range accs {
		if a.tasks == 0 {
			continue
		}
		op := &OpProfile{Name: name, Tasks: a.tasks, Chunks: a.chunks, Busy: a.busy}
		op.Mu = a.busy / float64(a.tasks)
		if a.nMeans > 1 && a.m2 > 0 {
			op.Sigma = math.Sqrt(a.m2 / float64(a.nMeans-1))
		}
		// The TAPER policy's online Welford estimate has per-task
		// resolution (chunk means wash variance out); prefer it once it
		// has a usable sample count.
		if a.taperN >= 8 && a.taperMu > 0 {
			op.Mu, op.Sigma = a.taperMu, a.taperSigma
		}
		p.Ops[name] = op
		totalBusy += a.busy
	}
	if len(p.Ops) == 0 {
		return nil, fmt.Errorf("search: profiling trace has no chunk events")
	}
	if p.Processors > 0 && p.Chunks > 0 {
		over := (float64(p.Processors)*p.Makespan - totalBusy) / float64(p.Chunks)
		if over > 0 {
			p.ChunkOverhead = over
		}
	}
	return p, nil
}

// Op returns the profile for an operator, or nil.
func (p *Profile) Op(name string) *OpProfile {
	return p.Ops[name]
}

// Merged pools the statistics of several profiled operators into the
// profile of the merged operator that would replace them (a phase whose
// rewrite the search keeps sequential runs as one operator covering
// every part's tasks). Pooled mean and variance are exact for the
// union of the parts' samples.
func Merged(name string, parts ...*OpProfile) *OpProfile {
	out := &OpProfile{Name: name}
	var sumSq float64
	for _, q := range parts {
		if q == nil {
			continue
		}
		out.Tasks += q.Tasks
		out.Chunks += q.Chunks
		out.Busy += q.Busy
		n := float64(q.Tasks)
		out.Mu += n * q.Mu
		sumSq += n * (q.Sigma*q.Sigma + q.Mu*q.Mu)
	}
	if out.Tasks == 0 {
		return out
	}
	n := float64(out.Tasks)
	out.Mu /= n
	if v := sumSq/n - out.Mu*out.Mu; v > 0 {
		out.Sigma = math.Sqrt(v)
	}
	return out
}
