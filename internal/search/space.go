package search

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/delirium"
)

// Candidate is one point of the search space: a concrete executable
// graph plus a description of which pieces of the split transformation
// it applies.
type Candidate struct {
	// ID is a stable human-readable identifier: "seq", "split", or a
	// hybrid/toggle description such as "split[proj]" or
	// "split-nopipe[update>outD]".
	ID    string
	Graph *delirium.Graph
	// SplitPhases lists the original phases whose rewrite this
	// candidate keeps (empty = the sequential program).
	SplitPhases []string
	// PipelinedOff and ChainOff list edges ("from>to") whose
	// pipelining/chaining the candidate disables relative to the fully
	// transformed graph.
	PipelinedOff []string
	ChainOff     []string
	// Degree counts transformation features the candidate applies
	// (split phases + pipelined edges + chained edges). Ties in the
	// cost model break toward the LOWER degree: a transformation that
	// does not pay for itself is not applied.
	Degree int
}

// Origin maps a split-graph operator name to the original phase it
// rewrites (itself for operators the transformation left alone).
type Origin func(part string) string

// maxRewrites bounds the phase-subset enumeration (2^maxRewrites
// structural candidates); the paper's programs have one to three
// rewritten phases.
const maxRewrites = 6

// maxToggleCross bounds the per-edge toggle cross-product per
// structural candidate; above it the space degrades to single-edge
// ablations plus the all-off variant.
const maxToggleCross = 16

// HybridCandidates enumerates the programs between seq (no rewrite
// applied) and split (every rewrite applied): every subset of phase
// rewrites, composed into a merged graph, times per-edge pipelining/
// chain toggles on the surviving transformed edges.
//
// A phase is "rewritten" when the split graph replaces it with
// operators whose origin is that phase but whose names differ (e.g.
// proj → {projPre, projI}). Keeping a rewrite sequential merges its
// parts back into the original phase operator; edges incident to a
// merged operator conservatively lose their Pipelined/Chain
// attributes (the pipelining proof was for the parts, not for the
// merged iteration order), and edges made transitively redundant by
// the merge are dropped.
func HybridCandidates(seq, split *delirium.Graph, origin Origin) ([]Candidate, error) {
	if seq == nil || split == nil {
		return nil, fmt.Errorf("search: hybrid enumeration needs both graphs")
	}
	// Group split operators by origin phase, and order rewritten
	// phases by the sequential program for stable IDs.
	groups := map[string][]string{}
	for _, nd := range split.Nodes {
		ph := nd.Name
		if origin != nil {
			ph = origin(nd.Name)
		}
		groups[ph] = append(groups[ph], nd.Name)
	}
	var rewrites []string
	for _, nd := range seq.Nodes {
		parts := groups[nd.Name]
		if len(parts) > 1 || (len(parts) == 1 && parts[0] != nd.Name) {
			rewrites = append(rewrites, nd.Name)
		}
	}
	if len(rewrites) > maxRewrites {
		rewrites = rewrites[:maxRewrites]
	}

	var out []Candidate
	for mask := 0; mask < 1<<len(rewrites); mask++ {
		var applied []string
		for i, ph := range rewrites {
			if mask&(1<<i) != 0 {
				applied = append(applied, ph)
			}
		}
		var base *delirium.Graph
		var id string
		switch {
		case len(applied) == 0:
			base, id = seq, "seq"
		case len(applied) == len(rewrites):
			base, id = split, "split"
		default:
			g, err := mergeUnsplit(seq, split, origin, applied)
			if err != nil {
				// A hybrid that does not compose is simply not a
				// candidate.
				continue
			}
			base, id = g, "split["+strings.Join(applied, ",")+"]"
		}
		out = append(out, toggleVariants(base, id, applied)...)
	}
	return out, nil
}

// GraphCandidates enumerates the edge-attribute weakenings of a raw
// graph: the graph as-is plus variants with pipelining/chaining
// disabled per edge. Every candidate keeps the node set and edge set
// intact — attributes are only ever turned off — so any execution
// schedule a candidate admits was already admitted by the original
// graph, and results stay bitwise identical by construction.
func GraphCandidates(g *delirium.Graph) []Candidate {
	return toggleVariants(g, "asis", nil)
}

// toggleVariants expands one structural candidate into its per-edge
// pipelining/chain toggle variants.
func toggleVariants(base *delirium.Graph, id string, splitPhases []string) []Candidate {
	type toggle struct {
		idx  int
		name string
		pipe bool // true: disable Pipelined (and Chain); false: disable Chain only
	}
	var toggles []toggle
	for i, e := range base.Edges {
		name := e.From + ">" + e.To
		if e.Pipelined {
			toggles = append(toggles, toggle{i, name, true})
		}
		if e.Chain {
			toggles = append(toggles, toggle{i, name, false})
		}
	}
	mk := func(off []toggle) Candidate {
		c := Candidate{ID: id, Graph: base, SplitPhases: splitPhases}
		if len(off) > 0 {
			g := cloneGraph(base, base.Name)
			var pnames, cnames []string
			for _, t := range off {
				e := g.Edges[t.idx]
				if t.pipe {
					e.Pipelined, e.Chain = false, false
					pnames = append(pnames, t.name)
				} else {
					e.Chain = false
					cnames = append(cnames, t.name)
				}
			}
			c.Graph = g
			c.PipelinedOff, c.ChainOff = pnames, cnames
			if len(pnames) > 0 {
				c.ID += "-nopipe[" + strings.Join(pnames, ",") + "]"
			}
			if len(cnames) > 0 {
				c.ID += "-nochain[" + strings.Join(cnames, ",") + "]"
			}
		}
		c.Degree = degree(c)
		return c
	}
	if len(toggles) == 0 || 1<<len(toggles) > maxToggleCross {
		out := []Candidate{mk(nil)}
		if len(toggles) > 0 {
			for _, t := range toggles {
				out = append(out, mk([]toggle{t}))
			}
			out = append(out, mk(toggles))
		}
		return out
	}
	var out []Candidate
	for m := 0; m < 1<<len(toggles); m++ {
		var off []toggle
		for i := range toggles {
			if m&(1<<i) != 0 {
				off = append(off, toggles[i])
			}
		}
		out = append(out, mk(off))
	}
	return out
}

// degree counts the transformation features a candidate applies.
func degree(c Candidate) int {
	d := len(c.SplitPhases)
	for _, e := range c.Graph.Edges {
		if e.Pipelined {
			d++
		}
		if e.Chain {
			d++
		}
	}
	return d
}

// mergeUnsplit composes the hybrid graph that applies only the listed
// phase rewrites: parts of unapplied rewrites collapse back into the
// original phase operator.
func mergeUnsplit(seq, split *delirium.Graph, origin Origin, applied []string) (*delirium.Graph, error) {
	keep := map[string]bool{}
	for _, ph := range applied {
		keep[ph] = true
	}
	// mapped resolves a split operator to its node in the hybrid.
	mapped := func(part string) (name string, merged bool) {
		ph := part
		if origin != nil {
			ph = origin(part)
		}
		if ph == part || keep[ph] {
			return part, false
		}
		return ph, true
	}

	g := delirium.NewGraph(seq.Name + "~" + strings.Join(applied, "+"))
	order, err := split.TopoOrder()
	if err != nil {
		return nil, err
	}
	added := map[string]bool{}
	add := func(name string, merged bool) error {
		if added[name] {
			return nil
		}
		added[name] = true
		src := split.Node(name)
		if merged || src == nil {
			src = seq.Node(name)
		}
		if src == nil {
			return fmt.Errorf("search: no definition for operator %q", name)
		}
		n := *src
		n.Name = name
		return g.AddNode(&n)
	}
	for _, nd := range order {
		name, merged := mapped(nd.Name)
		if err := add(name, merged); err != nil {
			return nil, err
		}
	}

	// Remap edges; an edge touching a merged operator loses its
	// scheduling attributes (conservative: the merged phase's iteration
	// order was not what the pipelining was proven against).
	type key struct{ f, t string }
	byKey := map[key]*delirium.Edge{}
	var keys []key
	for _, e := range split.Edges {
		f, fm := mapped(e.From)
		t, tm := mapped(e.To)
		if f == t {
			continue
		}
		ne := *e
		ne.From, ne.To = f, t
		if fm || tm {
			ne.Pipelined, ne.Chain = false, false
		}
		k := key{f, t}
		if prev, ok := byKey[k]; ok {
			if ne.Bytes > prev.Bytes {
				prev.Bytes, prev.PerTask = ne.Bytes, ne.PerTask
			}
			prev.Pipelined = prev.Pipelined && ne.Pipelined
			prev.Chain = prev.Chain && ne.Chain
			prev.Carried = prev.Carried || ne.Carried
			continue
		}
		byKey[k] = &ne
		keys = append(keys, k)
	}

	// Transitive reduction over the plain edges: merging reintroduces
	// dependences the remaining chain already implies (projI→outI
	// becomes proj→output alongside proj→update→output).
	succ := map[string][]string{}
	for _, k := range keys {
		succ[k.f] = append(succ[k.f], k.t)
	}
	reaches := func(from, to string, skip key) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range succ[v] {
				if v == skip.f && w == skip.t {
					continue
				}
				if w == to {
					return true
				}
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return false
	}
	for _, k := range keys {
		e := byKey[k]
		if e == nil || e.Pipelined || e.Chain || e.Carried {
			continue
		}
		if reaches(k.f, k.t, k) {
			delete(byKey, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].f != keys[j].f {
			return keys[i].f < keys[j].f
		}
		return keys[i].t < keys[j].t
	})
	for _, k := range keys {
		if e := byKey[k]; e != nil {
			g.AddEdge(e)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// cloneGraph deep-copies a graph under a new name.
func cloneGraph(g *delirium.Graph, name string) *delirium.Graph {
	out := delirium.NewGraph(name)
	for _, nd := range g.Nodes {
		n := *nd
		if err := out.AddNode(&n); err != nil {
			panic(err) // the source graph was valid
		}
	}
	for _, e := range g.Edges {
		ne := *e
		out.AddEdge(&ne)
	}
	return out
}
