#!/usr/bin/env python3
"""Smoke-test a running orchserve daemon over plain HTTP.

Usage: serve_smoke.py BASE_URL GRAPH_FILE WANT_DIGEST

Submits the graph twice (the second submission must be a cache hit),
asserts both results carry WANT_DIGEST — the digest a one-shot orchrun
produced for the same graph — then exercises async submission and
cancellation, and checks /api/v1/stats reflects it all. Exits non-zero
on the first violated expectation, so CI fails loudly.
"""
import json
import sys
import time
import urllib.request


def call(base, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as e:
        return e.code, json.load(e)


def check(cond, msg):
    if not cond:
        print("serve_smoke: FAIL:", msg, file=sys.stderr)
        sys.exit(1)
    print("serve_smoke: ok:", msg)


def main():
    base, graph_file, want = sys.argv[1], sys.argv[2], sys.argv[3]
    graph = open(graph_file).read()

    # Two synchronous submissions: miss then hit, both matching orchrun.
    code, st = call(base, "/api/v1/jobs", {"graph": graph, "n": 256, "mode": "split"})
    check(code == 200 and st["state"] == "done", f"first submit done (got {code}/{st.get('state')})")
    check(st["cache"] == "miss", f"first submit compiles (cache={st['cache']})")
    check(st["digest"] == want, f"daemon digest matches one-shot orchrun ({st['digest'][:12]}...)")

    code, st2 = call(base, "/api/v1/jobs", {"graph": graph, "n": 256, "mode": "split"})
    check(code == 200 and st2["cache"] == "hit", f"second submit is a cache hit (got {st2.get('cache')})")
    check(st2["digest"] == want, "cached graph digests identically")

    # Async submission + cancellation: a deliberately huge job must land
    # in the canceled state, and the daemon must keep serving afterwards.
    code, big = call(base, "/api/v1/jobs",
                     {"graph": graph, "n": 8192, "work": 1000, "async": True})
    check(code == 202 and big["id"], f"async submit accepted as {big.get('id')}")
    code, _ = call(base, f"/api/v1/jobs/{big['id']}/cancel", {})
    check(code == 200, "cancel endpoint accepted")
    deadline = time.time() + 30
    state = ""
    while time.time() < deadline:
        code, cur = call(base, f"/api/v1/jobs/{big['id']}?wait=1")
        state = cur["state"]
        if state in ("done", "failed", "canceled"):
            break
        time.sleep(0.1)
    check(state == "canceled", f"canceled job reaches the canceled state (got {state})")

    code, after = call(base, "/api/v1/jobs", {"graph": graph, "n": 128})
    check(code == 200 and after["state"] == "done" and after["digest"],
          "daemon still serves jobs after a cancellation")

    # A pipelined operator chain in split mode engages the cache-chain
    # scheduler (the kernels' split annotations qualify every edge), so
    # the daemon's aggregated pipeline counters must reflect it.
    chain_graph = (
        "graph chainsmoke\n"
        "node a kind=par tasks=n\n"
        "node b kind=par tasks=n\n"
        "node c kind=par tasks=n\n"
        "edge a -> b bytes=8 pertask pipelined\n"
        "edge b -> c bytes=8 pertask pipelined\n"
    )
    code, cj = call(base, "/api/v1/jobs",
                    {"graph": chain_graph, "n": 20000, "mode": "split"})
    check(code == 200 and cj["state"] == "done" and cj["digest"],
          f"chained graph executes (got {code}/{cj.get('state')})")

    code, stats = call(base, "/api/v1/stats")
    check(code == 200, "stats endpoint responds")
    check(stats["cache"]["hits"] >= 1, f"graph cache reports hits ({stats['cache']})")
    check(stats["pool"]["free"] == stats["pool"]["size"], f"pool fully released ({stats['pool']})")
    check(stats["jobs"]["canceled"] >= 1, f"job counters saw the cancellation ({stats['jobs']})")
    check(len(stats["allocations"]) >= 1, "allocation decisions are logged")
    pipe = stats["pipeline"]
    check(pipe["chain_hits"] >= 1,
          f"pipeline counters saw the chained job ({pipe})")
    check(pipe["chain_fallbacks"] == 0,
          f"no crash-recovery fallbacks without fault injection ({pipe})")
    print("serve_smoke: all checks passed")


if __name__ == "__main__":
    main()
