program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
