// Climate: the UCLA General Circulation Model measurements quoted in
// the paper's §5 — TAPER reaches 87% efficiency on 512 Ncube-2
// processors (speedup 445), drops to 57% (581) on 1024 because of the
// irregular cloud-physics tasks, and recovers to 83% (850) when split
// lets the radiation computation execute concurrently.
//
//	go run ./examples/climate [-n cells] [-seed s]
package main

import (
	"flag"
	"fmt"

	"orchestra/internal/experiment"
	"orchestra/internal/rts"
	"orchestra/internal/workload"
)

func main() {
	n := flag.Int("n", 3200, "latitude-longitude grid cells (paper: about 3200)")
	seed := flag.Uint64("seed", 7, "workload seed")
	flag.Parse()

	fmt.Printf("UCLA climate model, %d grid cells\n\n", *n)
	fmt.Print(experiment.FormatTable1(experiment.Table1(*n, *seed)))

	// Show where the time goes at 1024 processors without split: the
	// cloud-physics phase dominates through its irregularity.
	app := workload.Climate(workload.Config{N: *n, Seed: *seed})
	fmt.Println("\nper-phase character (sequential work and irregularity):")
	for _, phase := range []string{"dynamics", "cloud", "rad"} {
		spec := app.Bind(phase)
		fmt.Printf("  %-10s work %8.0f  cv %.2f\n",
			phase, spec.Op.TotalTime(), spec.Sigma/spec.Mu)
	}

	// The doubling claim for this application.
	e512 := experiment.RunApp(workload.Climate(workload.Config{N: *n, Seed: *seed}), 512, rts.ModeSplit).Efficiency()
	e1024 := experiment.RunApp(workload.Climate(workload.Config{N: *n, Seed: *seed}), 1024, rts.ModeSplit).Efficiency()
	fmt.Printf("\nwith split, doubling 512 -> 1024 processors loses %.1f efficiency points\n",
		100*(e512-e1024))
	fmt.Println("(the paper: doubling costs five to fifteen percent across the applications)")
}
