// Tomography: the Psirrfan x-ray image-reconstruction workload of the
// paper's Figure 6, swept over processor counts under the three
// runtime configurations. "Psirrfan with just the TAPER algorithm and
// cost functions is highly efficient on 512 processors but does not
// sustain this efficiency through 1024 processors. However, by
// exposing additional coarse-grained parallelism and two opportunities
// for pipelining, we transformed Psirrfan to achieve sustained
// efficiency of over 80% using up to 1024 processors."
//
//	go run ./examples/tomography [-n size] [-seed s]
package main

import (
	"flag"
	"fmt"

	"orchestra/internal/experiment"
	"orchestra/internal/trace"
)

func main() {
	n := flag.Int("n", 4096, "projection columns")
	seed := flag.Uint64("seed", 7, "workload seed")
	flag.Parse()

	procs := []int{128, 256, 512, 768, 1024, 1280}
	series := experiment.Figure6(*n, *seed, procs)

	fmt.Print(trace.Table("Psirrfan reconstruction (Figure 6)", "procs",
		series, trace.Result.Speedup, "speedup"))
	fmt.Println()
	fmt.Print(trace.Table("Psirrfan reconstruction (Figure 6)", "procs",
		series, func(r trace.Result) float64 { return 100 * r.Efficiency() }, "efficiency %"))

	// Summarize the paper's headline comparison at 1024 processors.
	var taper, split float64
	for _, s := range series {
		for i, x := range s.X {
			if x == 1024 {
				switch s.Label {
				case "TAPER":
					taper = s.Points[i].Efficiency()
				case "TAPER+split":
					split = s.Points[i].Efficiency()
				}
			}
		}
	}
	fmt.Printf("\nat 1024 processors: TAPER %.1f%%, TAPER+split %.1f%% (paper: split sustains >80%%)\n",
		100*taper, 100*split)
}
