// Quickstart: compile the paper's running example (Figure 1) and watch
// the split and pipelining transformations produce Figures 2 and 3,
// then execute the resulting dataflow graph on the simulated machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"orchestra/internal/analysis"
	"orchestra/internal/compile"
	"orchestra/internal/descriptor"
	"orchestra/internal/machine"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
	"orchestra/internal/stats"
)

// figure1 is the paper's Figure 1: computation A updates the masked
// columns of q (reading all of q), and computation B consumes q into
// output.
const figure1 = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

func main() {
	prog, err := source.Parse(figure1)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: symbolic analysis and data descriptors (§3.1–3.2).
	r := analysis.Analyze(prog)
	loopA := prog.Body[0].(*source.Do)
	loopB := prog.Body[1].(*source.Do)
	dA := r.DescribeLoop(loopA)
	dB := r.DescribeLoop(loopB)
	fmt.Println("descriptor of A (note the mask on q's column dimension):")
	fmt.Println(dA)
	fmt.Println("\ndescriptor of B:")
	fmt.Println(dB)
	fmt.Printf("\nA and B interfere: %v (B is flow dependent on A: %v)\n\n",
		descriptor.Interferes(dA, dB, nil), descriptor.FlowInterferes(dA, dB, nil))

	// Step 2: the split and pipelining transformations (§3.3).
	out, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range out.Report {
		fmt.Println("transform:", line)
	}
	fmt.Println("\ntransformed program (compare with the paper's Figures 2 and 3):")
	fmt.Println(source.Format(out.Program))
	fmt.Println("dataflow graph (Delirium):")
	fmt.Println(out.Graph.Encode())

	// Step 3: execute the graph on a simulated 256-processor machine.
	const p = 256
	rng := stats.NewRNG(11)
	specs := map[string]rts.OpSpec{}
	for _, n := range out.Graph.Nodes {
		times := make([]float64, 2048)
		for i := range times {
			if rng.Bernoulli(0.3) {
				times[i] = rng.Uniform(6, 12)
			} else {
				times[i] = 1
			}
		}
		t := times
		spec := rts.OpSpec{Op: sched.Op{
			Name: n.Name, N: len(t), Bytes: 64,
			Time: func(i int) float64 { return t[i] },
			Hint: func(i int) float64 { return t[i] },
		}}
		spec.SampleStats(64)
		specs[n.Name] = spec
	}
	bind := func(name string) rts.OpSpec { return specs[name] }
	cfg := machine.DefaultConfig(p)
	for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
		res, err := rts.RunGraph(cfg, out.Graph, bind, rts.RunOpts{Processors: p, Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s speedup %6.1f  efficiency %5.1f%%\n",
			mode, res.Speedup(), 100*res.Efficiency())
	}
}
