// Pipeline: the runtime side of §4.1's communication-granularity
// choice. A producer operation streams results into a consumer; the
// runtime picks the batch size m* that balances per-message overhead
// against pipeline fill, and the pipelined pair beats the traditional
// barrier execution.
//
//	go run ./examples/pipeline [-p procs] [-n tasks]
package main

import (
	"flag"
	"fmt"

	"orchestra/internal/delirium"
	"orchestra/internal/machine"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/stats"
)

func main() {
	p := flag.Int("p", 128, "processors")
	n := flag.Int("n", 4096, "tasks per operation")
	flag.Parse()

	// A machine with expensive messages relative to the task grain —
	// the regime where communication granularity matters (the paper's
	// Ncube-2 messages cost hundreds of microseconds).
	cfg := machine.DefaultConfig(*p)
	cfg.MsgOverhead = 1.0
	cfg.HopLatency = 0.1
	cfg.ByteCost = 0.001
	rng := stats.NewRNG(5)

	// Producer: a regular transform phase; consumer: regular. (With an
	// irregular producer, head-of-line blocking inside batches shifts
	// the optimum toward smaller batches — try editing the
	// distribution.)
	prodTimes := make([]float64, *n)
	for i := range prodTimes {
		prodTimes[i] = rng.Uniform(2.5, 3.5)
	}
	pt := prodTimes
	prod := rts.OpSpec{Op: sched.Op{
		Name: "produce", N: *n, Bytes: 64,
		Time: func(i int) float64 { return pt[i] },
		Hint: func(i int) float64 { return pt[i] },
	}}
	prod.SampleStats(128)
	cons := rts.OpSpec{Op: sched.Op{
		Name: "consume", N: *n, Bytes: 64,
		Time: func(int) float64 { return 1.5 },
		Hint: func(int) float64 { return 1.5 },
	}}
	cons.SampleStats(128)

	// The runtime's choice.
	mStar := rts.ChooseGranularity(cfg, *n, prod.Op.Bytes)
	fmt.Printf("communication granularity: m* = %d items per message\n", mStar)
	fmt.Println("\ntransfer-cost model across batch sizes (per equation in §4.1):")
	for _, m := range []int{1, 8, 32, mStar, 512, *n} {
		fmt.Printf("  m=%5d  cost=%8.1f\n", m, rts.PipeBatchCost(cfg, *n, prod.Op.Bytes, m))
	}

	// Processor allocation for the pair, then execution.
	p1, p2 := rts.AllocateSpecs(cfg, prod, cons, *p)
	fmt.Printf("\nprocessor allocation: producer %d, consumer %d (of %d)\n", p1, p2, *p)

	fmt.Println("\ncommunication granularity sweep (dedicated producer/consumer subsets);")
	fmt.Println("the model-chosen m* sits near the measured optimum, far from both extremes:")
	for _, m := range []int{1, 32, mStar, 1024, *n} {
		r := rts.ExecutePipelined(cfg, prod, cons, p1, p2, m)
		label := fmt.Sprintf("m=%d", m)
		if m == mStar {
			label = fmt.Sprintf("m*=%d (chosen)", m)
		}
		fmt.Printf("  %-18s makespan %8.1f  speedup %6.1f\n", label, r.Makespan, r.Speedup())
	}

	// The overlap benefit itself shows when both operations share the
	// whole machine under the dataflow runtime: a pipelined edge lets
	// the consumer start on partial data.
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }
	_ = factory
	for _, pipelined := range []bool{false, true} {
		g := delirium.NewGraph("pair")
		if err := g.AddNode(&delirium.Node{Name: "produce", Kind: delirium.Par}); err != nil {
			panic(err)
		}
		if err := g.AddNode(&delirium.Node{Name: "consume", Kind: delirium.Par}); err != nil {
			panic(err)
		}
		g.AddEdge(&delirium.Edge{From: "produce", To: "consume", Bytes: 64, PerTask: true, Pipelined: pipelined})
		bind := func(name string) rts.OpSpec {
			if name == "produce" {
				return prod
			}
			return cons
		}
		r, err := rts.ExecuteDAG(cfg, g, bind, rts.RunOpts{Processors: *p})
		if err != nil {
			panic(err)
		}
		label := "dataflow, plain edge:"
		if pipelined {
			label = "dataflow, pipelined edge:"
		}
		fmt.Printf("%-28s makespan %8.1f  speedup %6.1f\n", label, r.Makespan, r.Speedup())
	}
}
