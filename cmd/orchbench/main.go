// Command orchbench regenerates the paper's evaluation (§5): the
// Figure 6 processor sweep for Psirrfan, the in-text climate-model
// measurements (Table 1), the processor-doubling claim (Table 2), and
// the design-choice ablations DESIGN.md lists.
//
// The native experiment is deliberately not part of "all": unlike the
// simulated experiments it measures wall-clock time on this machine's
// cores, so its numbers are noisy and host-dependent. It writes its
// series to BENCH_native.json alongside the printed table.
//
// Usage:
//
//	orchbench [-exp fig6|table1|table2|ablations|native|all] [-n size] [-seed s]
//	          [-modes static,taper,split|all]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"orchestra/internal/cliflag"
	"orchestra/internal/dist"
	"orchestra/internal/experiment"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

func main() {
	// The dist experiment's coordinator forks this binary as its
	// workers; divert those forks before touching flags.
	dist.MaybeWorker()
	exp := flag.String("exp", "all", "experiment: fig6, table1, table2, ablations, iterated, policies, native, dist, hotpath, pipeline, search, nested, or all (the wall-clock experiments — native, dist, hotpath, pipeline, search, nested — are never part of all)")
	n := flag.Int("n", 0, "problem size override (0 = per-experiment default)")
	seed := flag.Uint64("seed", 7, "workload seed")
	nativeOut := flag.String("native-out", "BENCH_native.json", "output file for the native experiment's series")
	distOut := flag.String("dist-out", "BENCH_dist.json", "output file for the dist experiment's series")
	hotpathOut := flag.String("hotpath-out", "BENCH_hotpath.json", "before/after file for the hotpath experiment")
	pipelineOut := flag.String("pipeline-out", "BENCH_pipeline.json", "output file for the pipeline experiment's sweep")
	searchOut := flag.String("search-out", "BENCH_search.json", "output file for the search experiment's report")
	nestedOut := flag.String("nested-out", "BENCH_nested.json", "output file for the nested experiment's report")
	repeats := flag.Int("repeats", 3, "search experiment: best-of-N repeats per measured program")
	modesFlag := cliflag.Modes(flag.CommandLine, "modes", "all", "native experiment: modes to sweep (static, taper, split, all, or a comma list)")
	flag.Parse()

	modes := modesFlag.Modes()

	run := map[string]bool{}
	switch *exp {
	case "all":
		for _, e := range []string{"fig6", "table1", "table2", "ablations", "iterated", "policies"} {
			run[e] = true
		}
	case "fig6", "table1", "table2", "ablations", "iterated", "policies", "native", "dist", "hotpath", "pipeline", "search", "nested":
		run[*exp] = true
	default:
		fmt.Fprintf(os.Stderr, "orchbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	size := func(def int) int {
		if *n > 0 {
			return *n
		}
		return def
	}

	if run["fig6"] {
		fmt.Println("=== Figure 6: Psirrfan performance (speedup vs processors) ===")
		fmt.Println("paper: static flattens, TAPER sags past 512, TAPER+split sustains")
		fmt.Println(">80% efficiency through 1024 processors")
		fmt.Println()
		series := experiment.Figure6(size(4096), *seed,
			[]int{128, 256, 384, 512, 640, 768, 896, 1024, 1152, 1280})
		fmt.Print(trace.Table("Psirrfan", "procs", series, trace.Result.Speedup, "speedup"))
		fmt.Println()
		fmt.Print(trace.Table("Psirrfan", "procs", series,
			func(r trace.Result) float64 { return 100 * r.Efficiency() }, "efficiency %"))
		fmt.Println()
	}

	if run["table1"] {
		fmt.Println("=== Table 1: UCLA climate model, ~3200 grid cells ===")
		fmt.Print(experiment.FormatTable1(experiment.Table1(size(3200), *seed)))
		fmt.Println()
	}

	if run["table2"] {
		fmt.Println("=== Table 2: doubling processors with split (paper: 5-15% loss) ===")
		fmt.Print(experiment.FormatTable2(experiment.Table2(size(3200), *seed, 512)))
		fmt.Println()
	}

	if run["policies"] {
		fmt.Println("=== Loop schedulers on one irregular operation (psirrfan update, cold, p=512) ===")
		fmt.Print(experiment.FormatPolicies(experiment.Policies(size(4096), 512, *seed)))
		fmt.Println()
	}

	if run["iterated"] {
		fmt.Println("=== Extension: K-timestep unrolled dataflow (climate, K=8, p=1024) ===")
		app := workload.Climate(workload.Config{N: size(3200), Seed: *seed})
		taperSteps, splitSteps, unrolled := experiment.Iterated(app, 8, 1024)
		fmt.Printf("  per-step TAPER (barriers):  makespan %8.1f  eff %5.1f%%\n", taperSteps.Makespan, 100*taperSteps.Efficiency())
		fmt.Printf("  per-step split (barriers):  makespan %8.1f  eff %5.1f%%\n", splitSteps.Makespan, 100*splitSteps.Efficiency())
		fmt.Printf("  unrolled dataflow:          makespan %8.1f  eff %5.1f%%\n", unrolled.Makespan, 100*unrolled.Efficiency())
		fmt.Println()
	}

	if run["native"] {
		workers := []int{1, 2, 4}
		if g := runtime.GOMAXPROCS(0); g > 4 {
			workers = append(workers, g)
		}
		fmt.Printf("=== Native backend: Psirrfan topology on goroutines (GOMAXPROCS=%d) ===\n", runtime.GOMAXPROCS(0))
		fmt.Println("wall-clock measurements; CPU-spinning log-normal tasks, cv 1")
		fmt.Println()
		points := experiment.NativeSweep(size(2048), *seed, workers, 2000, modes)
		fmt.Print(experiment.FormatNative(points))
		file := struct {
			Schema int                      `json:"schema"`
			Points []experiment.NativePoint `json:"points"`
		}{Schema: trace.SchemaVersion, Points: points}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*nativeOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d points to %s\n\n", len(points), *nativeOut)
	}

	if run["dist"] {
		// Wall-clock distributed measurements: forked worker processes
		// over Unix sockets, with real protocol comm time set beside the
		// simulator cost model's prediction, and an array-kernel digest
		// cross-check against the native backend for every point.
		workers := []int{1, 2, 4}
		fmt.Printf("=== Dist backend: multi-process workers over Unix sockets (GOMAXPROCS=%d) ===\n", runtime.GOMAXPROCS(0))
		fmt.Println("wall-clock measurements; CPU-spinning log-normal tasks, cv 1")
		fmt.Println()
		rep := experiment.DistSweep(size(1024), *seed, workers, 2000, modes)
		fmt.Print(experiment.FormatDist(rep))
		if !rep.DigestsAgree() {
			fmt.Fprintln(os.Stderr, "orchbench: dist and native array-kernel digests differ")
			os.Exit(1)
		}
		file := struct {
			Schema int                   `json:"schema"`
			Report experiment.DistReport `json:"report"`
		}{Schema: trace.SchemaVersion, Report: rep}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*distOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d points to %s\n\n", len(rep.Points), *distOut)
	}

	if run["hotpath"] {
		// Wall-clock hot-path measurements with before/after bookkeeping:
		// the first run records the "before" series into -hotpath-out, a
		// later run (after an optimization) fills "after" and prints the
		// deltas. Parameters are fixed so the two series are comparable.
		workers := []int{1}
		if g := runtime.GOMAXPROCS(0); g > 1 {
			workers = append(workers, g)
		}
		fmt.Printf("=== Hot-path: native backend + sim event loop (GOMAXPROCS=%d) ===\n\n", runtime.GOMAXPROCS(0))
		rep := experiment.Hotpath(size(1024), *seed, workers, 2000, 1_000_000)
		fmt.Print(experiment.FormatNative(rep.Native))
		fmt.Printf("\nsim event loop: %d events, %.1f ns/event, %.3f allocs/event\n\n",
			rep.SimEvents.Events, rep.SimEvents.NsPerEvent, rep.SimEvents.AllocsPerEvent)
		var file struct {
			Schema int                       `json:"schema"`
			Before *experiment.HotpathReport `json:"before,omitempty"`
			After  *experiment.HotpathReport `json:"after,omitempty"`
		}
		if data, err := os.ReadFile(*hotpathOut); err == nil {
			// A file in an older (unversioned) format starts the
			// before/after cycle over rather than failing the run.
			if err := json.Unmarshal(data, &file); err != nil || file.Schema != trace.SchemaVersion {
				fmt.Fprintf(os.Stderr, "orchbench: %s is not schema %d; starting a fresh before/after cycle\n",
					*hotpathOut, trace.SchemaVersion)
				file.Before, file.After = nil, nil
			}
		}
		file.Schema = trace.SchemaVersion
		if file.Before == nil {
			file.Before = &rep
			fmt.Printf("recorded the before series in %s\n\n", *hotpathOut)
		} else {
			file.After = &rep
			fmt.Print(experiment.FormatHotpathDelta(*file.Before, rep))
			fmt.Printf("\nrecorded the after series in %s\n\n", *hotpathOut)
		}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*hotpathOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
	}

	if run["pipeline"] {
		// Wall-clock cache-chain measurement: the MemChain bandwidth
		// workload (five streaming kernels over 32 MB arrays at the
		// default size) in split mode, chained vs unchained. The digest
		// column proves both schedules produced identical bits.
		workers := []int{1, 2, 4}
		if g := runtime.GOMAXPROCS(0); g > 4 {
			workers = append(workers, g)
		}
		fmt.Printf("=== Pipeline: cache chaining on the memory-bound chain (GOMAXPROCS=%d) ===\n\n", runtime.GOMAXPROCS(0))
		rep := experiment.Pipeline(size(1<<22), *seed, workers, 3)
		fmt.Print(experiment.FormatPipeline(rep))
		if !rep.DigestsAgree() {
			fmt.Fprintln(os.Stderr, "orchbench: chained and unchained digests differ")
			os.Exit(1)
		}
		file := struct {
			Schema int                       `json:"schema"`
			Report experiment.PipelineReport `json:"report"`
		}{Schema: trace.SchemaVersion, Report: rep}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*pipelineOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d points to %s\n\n", len(rep.Points), *pipelineOut)
	}

	if run["search"] {
		// Wall-clock profile-guided split search: always-seq vs
		// always-split (wholesale, even on one worker) vs the program the
		// search emits from a profile of the split run. The binder
		// conserves work across graphs, and the digest column proves every
		// program executed each original task exactly once.
		workers := []int{1, 2, 4, 8}
		fmt.Printf("=== Search: profile-guided split search (GOMAXPROCS=%d) ===\n\n", runtime.GOMAXPROCS(0))
		rep := experiment.Search(size(1024), *seed, workers, 2000, *repeats)
		fmt.Print(experiment.FormatSearch(rep))
		if !rep.DigestsAgree() {
			fmt.Fprintln(os.Stderr, "orchbench: searched-program coverage digests differ")
			os.Exit(1)
		}
		file := struct {
			Schema int                     `json:"schema"`
			Report experiment.SearchReport `json:"report"`
		}{Schema: trace.SchemaVersion, Report: rep}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*searchOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d points to %s\n\n", len(rep.Points), *searchOut)
	}

	if run["nested"] {
		// Nested-dataflow measurements: runtime expansion vs static
		// unrolling of the same workloads, with a bitwise digest
		// cross-check per point. Expansion must change scheduling only —
		// a digest mismatch is a correctness failure, not noise.
		procs := []int{1, 2, 4}
		fmt.Printf("=== Nested: runtime expansion vs static unrolling (GOMAXPROCS=%d) ===\n\n", runtime.GOMAXPROCS(0))
		rep := experiment.NestedSweep(size(512), procs, modes)
		fmt.Print(experiment.FormatNested(rep))
		if !rep.DigestsAgree() {
			fmt.Fprintln(os.Stderr, "orchbench: nested and statically-unrolled digests differ")
			os.Exit(1)
		}
		file := struct {
			Schema int                     `json:"schema"`
			Report experiment.NestedReport `json:"report"`
		}{Schema: trace.SchemaVersion, Report: rep}
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*nestedOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "orchbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d points to %s\n\n", len(rep.Points), *nestedOut)
	}

	if run["ablations"] {
		fmt.Println("=== Ablations ===")
		w, wo := experiment.AblationCostFunction(size(4096), 256, *seed)
		fmt.Printf("cost function (vortex velocity, p=256): with=%.1f without=%.1f (%.1f%% better)\n",
			w.Makespan, wo.Makespan, 100*(wo.Makespan-w.Makespan)/wo.Makespan)
		it, na := experiment.AblationAllocation(size(3200), 512, *seed)
		fmt.Printf("allocation (climate cloud+radI, p=512): iterative=%.1f naive-half=%.1f (%.1f%% better)\n",
			it.Makespan, na.Makespan, 100*(na.Makespan-it.Makespan)/na.Makespan)
		d, c := experiment.AblationDistributed(size(4096), 512, *seed)
		fmt.Printf("distributed vs central (psirrfan update, p=512): distributed=%.1f central=%.1f; messages %d vs %d\n",
			d.Makespan, c.Makespan, d.Messages, c.Messages)
		fmt.Println("allocation max_count sweep (climate cloud+radI, p=512):")
		for _, r := range experiment.AblationMaxCount(size(3200), 512, *seed, []int{0, 1, 2, 4, 8}) {
			fmt.Printf("  %-12s makespan=%.1f\n", r.Name, r.Makespan)
		}
		fmt.Println()
	}
}
