// Command orchc is the compiler driver: it parses a mini-Fortran
// program, runs the symbolic analysis, applies the split and pipelining
// transformations, and writes the two outputs the paper's compiler
// produces — the transformed program and a Delirium dataflow graph.
//
// Usage:
//
//	orchc [-no-split] [-no-pipeline] [-depth n] [-descriptors] [-o prefix] file.f
//
// With -o prefix, the transformed program goes to prefix.f and the
// graph to prefix.graph; otherwise both print to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"orchestra/internal/analysis"
	"orchestra/internal/compile"
	"orchestra/internal/delirium"
	"orchestra/internal/source"
)

func main() {
	fuse := flag.Bool("fuse", false, "fuse legal adjacent loops before splitting")
	noSplit := flag.Bool("no-split", false, "disable the split transformation")
	noPipe := flag.Bool("no-pipeline", false, "disable the pipelining transformation")
	depth := flag.Int("depth", 1, "pipelining depth")
	descriptors := flag.Bool("descriptors", false, "print symbolic data descriptors for each top-level computation")
	dot := flag.Bool("dot", false, "also emit the dataflow graph in Graphviz DOT form")
	out := flag.String("o", "", "output file prefix (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orchc [flags] file.f")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := source.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	if *descriptors {
		r := analysis.Analyze(prog)
		fmt.Println("symbolic data descriptors:")
		for i, s := range prog.Body {
			d := r.DescribeStmt(s)
			fmt.Printf("-- computation %d (%T):\n%s\n", i+1, s, d)
		}
		if len(r.Calls) > 0 {
			fmt.Println("\ncall-site groups (hot sites grouped by aliasing and constants):")
			for _, k := range analysis.GroupKeys(r.Calls) {
				fmt.Printf("  %s: %d site(s)\n", k, analysis.Groups(r.Calls)[k])
			}
		}
		fmt.Println()
	}

	opts := compile.DefaultOptions()
	opts.EnableFusion = *fuse
	opts.EnableSplit = !*noSplit
	opts.EnablePipeline = !*noPipe
	opts.PipelineDepth = *depth

	res, err := compile.Compile(prog, opts)
	if err != nil {
		fatal(err)
	}
	for _, line := range res.Report {
		fmt.Fprintln(os.Stderr, "orchc:", line)
	}
	if st, err := res.Graph.Summarize(); err == nil {
		fmt.Fprintln(os.Stderr, "orchc: graph:", st)
	}
	// Unit-weight critical path = the residual serialization depth.
	w := delirium.Weights{}
	for _, n := range res.Graph.Nodes {
		w[n.Name] = 1
	}
	if path, depth, err := res.Graph.CriticalPath(w); err == nil {
		fmt.Fprintf(os.Stderr, "orchc: critical path (depth %.0f): %v\n", depth, path)
	}

	program := source.Format(res.Program)
	graph := res.Graph.Encode()
	if *out == "" {
		fmt.Println("! ---- transformed program ----")
		fmt.Print(program)
		fmt.Println("! ---- dataflow graph ----")
		fmt.Print(graph)
		if *dot {
			fmt.Println("// ---- graphviz ----")
			fmt.Print(res.Graph.ToDot())
		}
		return
	}
	if *out+".f" == flag.Arg(0) {
		fatal(fmt.Errorf("output %s.f would overwrite the input", *out))
	}
	if err := os.WriteFile(*out+".f", []byte(program), 0o644); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out+".graph", []byte(graph), 0o644); err != nil {
		fatal(err)
	}
	if *dot {
		if err := os.WriteFile(*out+".dot", []byte(res.Graph.ToDot()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "orchc: wrote %s.f and %s.graph\n", *out, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orchc:", err)
	os.Exit(1)
}
