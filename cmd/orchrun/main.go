// Command orchrun executes a Delirium dataflow graph (as produced by
// orchc) under one of the three runtime configurations of the paper's
// evaluation: static, TAPER, or TAPER with the split-exposed
// concurrency — on either execution backend:
//
//   - -backend sim (default): the discrete-event Ncube-2-style
//     simulator; node task times are drawn from a log-normal with
//     coefficient of variation -cv and charged to the simulated clock.
//   - -backend native: the goroutine runtime of internal/native; the
//     same log-normal draws are converted to real CPU spinning
//     (-unitwork floating-point iterations per time unit), and the
//     reported makespan/efficiency are wall-clock measurements.
//
// Graph nodes are bound to synthetic parallel operations. A node's
// task count comes from its tasks= annotation (a symbolic trip count
// such as "n", resolved with the -n flag) when present, else from
// -tasks.
//
// Profiling: -cpuprofile and -memprofile write runtime/pprof profiles
// of the run. With the native backend, profiling also enables pprof
// goroutine labels on the workers (worker=<id>, op=<name>), so
// `go tool pprof -tagfocus` can slice samples by operator.
//
// Tracing: -trace out.json records the run's per-chunk spans, steals,
// TAPER decisions, allocation estimates and pipeline-gate advances, and
// writes them as a Chrome trace-event file loadable in Perfetto or
// chrome://tracing (workers as tracks, steals as flow arrows, TAPER
// grain as counter tracks). A .csv suffix writes the raw event rows
// instead. -gantt prints a per-operator terminal summary of the same
// trace. Both require a single -mode.
//
// Fault injection: -fault runs the graph under a deterministic fault
// plan (internal/fault syntax), e.g.
//
//	orchrun -backend native -mode taper -fault crash:0@1,deadline:0.01 g.graph
//
// crashes worker 0 at its second chunk boundary; the run survives on
// the remaining workers, and -trace/-gantt show the fault, retry and
// reallocation events the recovery leaves behind. delay:/loss: perturb
// the simulator's message cost model (the native backend has no
// modelled messages and ignores them).
//
// Usage:
//
//	orchrun [-p procs] [-backend sim|native] [-mode static|taper|split|all]
//	        [-tasks n] [-cv x] [-seed s] [-unitwork w] [-fault plan]
//	        [-trace out.json|out.csv] [-gantt]
//	        [-cpuprofile f] [-memprofile f] file.graph
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"orchestra/internal/cliflag"
	"orchestra/internal/delirium"
	"orchestra/internal/interp"
	"orchestra/internal/native"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/search"
	"orchestra/internal/source"
	"orchestra/internal/trace"
	"orchestra/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive
// the full flag-to-execution path and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("orchrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := fs.Int("p", 64, "number of processors (sim) or worker goroutines (native; 0 = GOMAXPROCS)")
	backend := cliflag.Backend(fs, "backend", "sim", "execution backend: sim or native")
	mode := cliflag.Modes(fs, "mode", "split", "execution mode: static, taper, split, or all")
	tasks := fs.Int("tasks", 2048, "tasks per operator without a tasks= annotation")
	nParam := fs.Int("n", 2048, "value of the symbolic problem size n in tasks= annotations")
	cv := fs.Float64("cv", 1.0, "coefficient of variation of task times")
	seed := fs.Uint64("seed", 1, "workload seed")
	unitWork := fs.Int("unitwork", 4000, "native backend: floating-point iterations per task-time unit")
	kernel := fs.Bool("kernel", false, "bind real array kernels instead of synthetic timings and print the result digest (see -kernelwork)")
	kernelWork := fs.Int("kernelwork", 1, "with -kernel: function-evaluation rounds per task")
	traceOut := fs.String("trace", "", "write an execution trace to this file (Chrome trace-event JSON; CSV if the name ends in .csv)")
	gantt := fs.Bool("gantt", false, "print a per-operator Gantt/summary of the execution trace")
	omega := fs.Float64("omega", 0, "override TAPER's confidence width ω (0 = scheduler default)")
	autosplit := fs.Bool("autosplit", false, "profile the run, search the per-edge pipelining/chaining space against the profile, and re-run the searched graph (single -mode)")
	noChain := fs.Bool("nochain", false, "native split mode: disable cache chaining (annotated edges fall back to the prefix gate)")
	faultFlag := cliflag.Fault(fs, "fault", "inject a fault plan, e.g. 'crash:0@1,stall:2@0:0.01,delay:0.5' (see internal/fault)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: orchrun [flags] file.graph")
		return 2
	}
	modes := mode.Modes()
	tracing := *traceOut != "" || *gantt
	if tracing && len(modes) != 1 {
		fmt.Fprintln(stderr, "orchrun: -trace/-gantt need a single -mode, not a list")
		return 2
	}
	if *autosplit && len(modes) != 1 {
		fmt.Fprintln(stderr, "orchrun: -autosplit needs a single -mode, not a list")
		return 2
	}
	be, err := backend.New(*p)
	if err != nil {
		fmt.Fprintln(stderr, "orchrun:", err)
		return 2
	}
	profiling := *cpuprofile != "" || *memprofile != ""
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	text, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "orchrun:", err)
		return 1
	}
	g, err := delirium.Decode(string(text))
	if err != nil {
		fmt.Fprintln(stderr, "orchrun:", err)
		return 1
	}

	count := func(n *delirium.Node) int {
		c := *tasks
		if n.Tasks != "" {
			if v, ok := resolveTasks(n.Tasks, *nParam); ok {
				c = v
			}
		}
		if c < 1 {
			c = 1
		}
		return c
	}
	var bind rts.Binder
	if *kernel {
		// Real array kernels, rebuilt fresh inside the mode loop (each
		// execution must start from zeroed arrays): deterministic numeric
		// results whose digest identifies the run's output bitwise —
		// comparable across backends, modes, and the serve daemon's
		// pooled execution.
	} else if backend.Native() {
		// Real CPU-bound tasks: the drawn log-normal time units become
		// spin iterations, so TAPER's measured statistics see the same
		// irregularity the simulator models.
		bind = native.SpinBinder(g, count, *cv, *seed, *unitWork)
	} else {
		bind = simBinder(g, count, *cv, *seed)
	}

	if st, err := g.Summarize(); err == nil {
		fmt.Fprintln(stdout, "graph:", st)
	}
	unit := ""
	if backend.Native() {
		unit = " s"
	}
	plan := faultFlag.Plan()

	for _, m := range modes {
		var kernelState *interp.State
		if *kernel {
			bind, kernelState, err = native.ArrayKernels(g, *nParam, *kernelWork)
			if err != nil {
				fmt.Fprintln(stderr, "orchrun:", err)
				return 2
			}
		}
		opts := rts.RunOpts{Processors: *p, Mode: m, Omega: *omega, Fault: plan}
		if *noChain {
			opts.Chain = rts.ChainOff
		}
		if backend.Native() && profiling {
			// Label worker goroutines so profiles can be sliced by operator.
			opts.Labels = true
		}
		var col obs.Collector
		if tracing || *autosplit {
			opts.Sink = &col
		}
		r, err := be.Run(g, bind, opts)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		chained := ""
		if r.ChainHits+r.ChainSpills+r.ChainFallbacks > 0 {
			chained = fmt.Sprintf(", chained %d", r.ChainHits)
			if r.ChainSpills+r.ChainFallbacks > 0 {
				chained += fmt.Sprintf(" (spilled %d)", r.ChainSpills+r.ChainFallbacks)
			}
		}
		fmt.Fprintf(stdout, "%-12s makespan %10.4g%s  speedup %8.1f  efficiency %5.1f%%  (chunks %d, steals %d, msgs %d%s)\n",
			m, r.Makespan, unit, r.Speedup(), 100*r.Efficiency(), r.Chunks, r.Steals, r.Messages, chained)
		if *kernel {
			fmt.Fprintf(stdout, "digest %s\n", native.StateDigest(kernelState))
		}
		if tracing {
			if err := writeTrace(*traceOut, *gantt, col.Trace, stdout); err != nil {
				fmt.Fprintln(stderr, "orchrun:", err)
				return 1
			}
		}
		if *autosplit {
			if code := runSearched(be, g, bind, opts, col.Trace, r, *kernel, *nParam, *kernelWork, unit, stdout, stderr); code != 0 {
				return code
			}
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
	}
	return 0
}

// runSearched is the -autosplit second pass: distill the profiling
// run's trace, search the graph's per-edge pipelining/chaining space
// (the candidates only ever weaken edge attributes, so any schedule a
// candidate admits was admitted by the profiled graph and results are
// unchanged by construction), and re-run the emitted graph for
// comparison. With -kernel, the kernels are rebuilt from the original
// graph — reads follow the original edge attributes — and only the
// schedule follows the searched graph, so the digest must match the
// profiled run's.
func runSearched(be rts.Backend, g *delirium.Graph, bind rts.Binder, opts rts.RunOpts, tr *obs.Trace, base trace.Result, kernel bool, nParam, kernelWork int, unit string, stdout, stderr io.Writer) int {
	prof, err := search.FromTrace(tr, opts.Omega)
	if err != nil {
		fmt.Fprintln(stderr, "orchrun: autosplit:", err)
		return 1
	}
	plan, err := search.Run(prof, search.GraphCandidates(g), search.Options{
		P: opts.Processors, Omega: opts.Omega,
	})
	if err != nil {
		fmt.Fprintln(stderr, "orchrun: autosplit:", err)
		return 1
	}
	fmt.Fprintf(stdout, "autosplit: %d candidates, chose %q\n", len(plan.Scores), plan.Best.ID)
	for _, s := range plan.Scores {
		if s.Validated > 0 {
			mark := " "
			if s.Chosen {
				mark = "*"
			}
			fmt.Fprintf(stdout, "  %s %-40s model %10.4g  dry-run %10.4g\n", mark, s.ID, s.Model, s.Validated)
		}
	}
	if plan.Best.ID == "asis" {
		fmt.Fprintln(stdout, "autosplit: the graph as written is the profitable subset; keeping it")
		return 0
	}
	var kernelState *interp.State
	if kernel {
		// Kernels are built from the original graph (their read patterns
		// follow its edge attributes); the searched graph only reorders
		// the schedule.
		bind, kernelState, err = native.ArrayKernels(g, nParam, kernelWork)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun: autosplit:", err)
			return 2
		}
	}
	opts.Sink = nil
	r, err := be.Run(plan.Best.Graph, bind, opts)
	if err != nil {
		fmt.Fprintln(stderr, "orchrun: autosplit:", err)
		return 1
	}
	delta := 0.0
	if base.Makespan > 0 {
		delta = 100 * (base.Makespan - r.Makespan) / base.Makespan
	}
	fmt.Fprintf(stdout, "%-12s makespan %10.4g%s  speedup %8.1f  efficiency %5.1f%%  (%+.1f%% vs profiled run)\n",
		"searched", r.Makespan, unit, r.Speedup(), 100*r.Efficiency(), delta)
	if kernel {
		fmt.Fprintf(stdout, "digest %s\n", native.StateDigest(kernelState))
	}
	return 0
}

// writeTrace delivers a collected trace: a Chrome trace-event file (or
// CSV for .csv paths) when path is non-empty, and/or the terminal
// summary when gantt is set.
func writeTrace(path string, gantt bool, t *obs.Trace, stdout io.Writer) error {
	if t == nil {
		return fmt.Errorf("no trace was collected")
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, ".csv") {
			err = obs.WriteCSV(f, t)
		} else {
			err = obs.WriteChromeTrace(f, t)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if gantt {
		fmt.Fprint(stdout, obs.Summary(t))
	}
	return nil
}

// simBinder binds every node to a synthetic operation whose task
// times are log-normal with the requested cv: sigma^2 = ln(1+cv^2).
func simBinder(g *delirium.Graph, count func(*delirium.Node) int, cv float64, seed uint64) rts.Binder {
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := -sigma * sigma / 2 // unit mean
	specs := map[string]rts.OpSpec{}
	for _, n := range g.Nodes {
		rng := stats.NewRNG(seed ^ hash(n.Name))
		times := make([]float64, count(n))
		for i := range times {
			times[i] = rng.LogNormal(mu, sigma)
		}
		t := times
		spec := rts.OpSpec{Op: sched.Op{
			Name:  n.Name,
			N:     len(t),
			Time:  func(i int) float64 { return t[i] },
			Bytes: 64,
			Hint:  func(i int) float64 { return t[i] },
		}}
		spec.SampleStats(128)
		specs[n.Name] = spec
	}
	return func(name string) rts.OpSpec { return specs[name] }
}

// resolveTasks evaluates a symbolic trip-count annotation with every
// identifier bound to n.
func resolveTasks(expr string, n int) (int, bool) {
	scratch, err := source.Parse("program s\n integer v\n v = " + expr + "\nend\n")
	if err != nil {
		return 0, false
	}
	st := interp.NewState()
	rhs := scratch.Body[0].(*source.Assign).RHS
	source.WalkExpr(rhs, func(e source.Expr) {
		if id, ok := e.(*source.Ident); ok {
			st.Scalars[id.Name] = float64(n)
		}
	})
	if err := interp.Run(scratch, st); err != nil {
		return 0, false
	}
	return int(st.Scalars["v"]), true
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
