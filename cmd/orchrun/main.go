// Command orchrun executes a Delirium dataflow graph (as produced by
// orchc) on the simulated distributed-memory machine under one of the
// three runtime configurations of the paper's evaluation: static,
// TAPER, or TAPER with the split-exposed concurrency.
//
// Graph nodes are bound to synthetic parallel operations. A node's
// task count comes from its tasks= annotation (a symbolic trip count
// such as "n", resolved with the -n flag) when present, else from
// -tasks; task times are drawn from a log-normal with coefficient of
// variation -cv.
//
// Usage:
//
//	orchrun [-p procs] [-mode static|taper|split] [-tasks n] [-cv x] [-seed s] file.graph
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"orchestra/internal/delirium"
	"orchestra/internal/interp"
	"orchestra/internal/machine"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
	"orchestra/internal/stats"
)

func main() {
	p := flag.Int("p", 64, "number of processors")
	mode := flag.String("mode", "split", "execution mode: static, taper, split, or all")
	tasks := flag.Int("tasks", 2048, "tasks per operator without a tasks= annotation")
	nParam := flag.Int("n", 2048, "value of the symbolic problem size n in tasks= annotations")
	cv := flag.Float64("cv", 1.0, "coefficient of variation of task times")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: orchrun [flags] file.graph")
		os.Exit(2)
	}
	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	g, err := delirium.Decode(string(text))
	if err != nil {
		fatal(err)
	}

	var modes []rts.Mode
	switch strings.ToLower(*mode) {
	case "static":
		modes = []rts.Mode{rts.ModeStatic}
	case "taper":
		modes = []rts.Mode{rts.ModeTaper}
	case "split":
		modes = []rts.Mode{rts.ModeSplit}
	case "all":
		modes = []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	// Bind every node to a synthetic operation. A log-normal with the
	// requested cv: sigma^2 = ln(1+cv^2).
	sigma := math.Sqrt(math.Log(1 + *cv**cv))
	mu := -sigma * sigma / 2 // unit mean
	specs := map[string]rts.OpSpec{}
	for _, n := range g.Nodes {
		count := *tasks
		if n.Tasks != "" {
			if c, ok := resolveTasks(n.Tasks, *nParam); ok {
				count = c
			}
		}
		if count < 1 {
			count = 1
		}
		rng := stats.NewRNG(*seed ^ hash(n.Name))
		times := make([]float64, count)
		for i := range times {
			times[i] = rng.LogNormal(mu, sigma)
		}
		t := times
		spec := rts.OpSpec{Op: sched.Op{
			Name:  n.Name,
			N:     len(t),
			Time:  func(i int) float64 { return t[i] },
			Bytes: 64,
			Hint:  func(i int) float64 { return t[i] },
		}}
		spec.SampleStats(128)
		specs[n.Name] = spec
	}
	bind := func(name string) rts.OpSpec { return specs[name] }

	cfg := machine.DefaultConfig(*p)
	if st, err := g.Summarize(); err == nil {
		fmt.Println("graph:", st)
	}
	for _, m := range modes {
		r, err := rts.RunGraph(cfg, g, bind, *p, m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s makespan %10.1f  speedup %8.1f  efficiency %5.1f%%  (chunks %d, steals %d, msgs %d)\n",
			m, r.Makespan, r.Speedup(), 100*r.Efficiency(), r.Chunks, r.Steals, r.Messages)
	}
}

// resolveTasks evaluates a symbolic trip-count annotation with every
// identifier bound to n.
func resolveTasks(expr string, n int) (int, bool) {
	scratch, err := source.Parse("program s\n integer v\n v = " + expr + "\nend\n")
	if err != nil {
		return 0, false
	}
	st := interp.NewState()
	rhs := scratch.Body[0].(*source.Assign).RHS
	source.WalkExpr(rhs, func(e source.Expr) {
		if id, ok := e.(*source.Ident); ok {
			st.Scalars[id.Name] = float64(n)
		}
	})
	if err := interp.Run(scratch, st); err != nil {
		return 0, false
	}
	return int(st.Scalars["v"]), true
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "orchrun:", err)
	os.Exit(1)
}
