// Command orchrun executes a Delirium dataflow graph (as produced by
// orchc) under one of the three runtime configurations of the paper's
// evaluation: static, TAPER, or TAPER with the split-exposed
// concurrency — on any registered execution backend:
//
//   - -backend sim (default): the discrete-event Ncube-2-style
//     simulator; node task times are drawn from a log-normal with
//     coefficient of variation -cv and charged to the simulated clock.
//   - -backend native: the goroutine runtime of internal/native; the
//     same log-normal draws are converted to real CPU spinning
//     (-unitwork floating-point iterations per time unit), and the
//     reported makespan/efficiency are wall-clock measurements.
//   - -backend dist: the distributed runtime of internal/dist; -p
//     worker processes are forked from this binary and driven over
//     Unix-domain sockets, and the report additionally carries real
//     per-message communication time. Backend options ride on the
//     flag, e.g. -backend dist:heartbeat_ms=5.
//
// Graph nodes are bound to kernels resolved by name from the process
// registry: "lognormal" (modeled timings) on the simulator, "spin"
// (real CPU spinning) on the measured backends, or "array" (real
// array kernels over a memory image, with a result digest) under
// -kernel. A node's task count comes from its tasks= annotation (a
// symbolic trip count such as "n", resolved with the -n flag) when
// present, else from -tasks.
//
// Graphs containing expandable nodes (kind=exp, e.g.
// examples/vortex.graph) are bound to the "nested" workload kernels
// instead: the expansion rules the graph names (rule=dc divide-and-
// conquer, rule=vortex adaptive refinement) materialize sub-graphs at
// execution time, -n sets the problem size, and a result digest is
// printed — bitwise identical across backends, modes and worker
// counts, and to the same graph statically unrolled. The dist backend
// refuses expandable graphs (it cannot ship not-yet-materialized
// sub-graphs to worker processes).
//
// Profiling: -cpuprofile and -memprofile write runtime/pprof profiles
// of the run. With the native backend, profiling also enables pprof
// goroutine labels on the workers (worker=<id>, op=<name>), so
// `go tool pprof -tagfocus` can slice samples by operator.
//
// Tracing: -trace out.json records the run's per-chunk spans, steals,
// TAPER decisions, allocation estimates and pipeline-gate advances, and
// writes them as a Chrome trace-event file loadable in Perfetto or
// chrome://tracing (workers as tracks, steals as flow arrows, TAPER
// grain as counter tracks). A .csv suffix writes the raw event rows
// instead. -gantt prints a per-operator terminal summary of the same
// trace. Both require a single -mode.
//
// Fault injection: -fault runs the graph under a deterministic fault
// plan (internal/fault syntax), e.g.
//
//	orchrun -backend native -mode taper -fault crash:0@1,deadline:0.01 g.graph
//
// crashes worker 0 at its second chunk boundary; the run survives on
// the remaining workers, and -trace/-gantt show the fault, retry and
// reallocation events the recovery leaves behind. On the dist backend
// a crash is a literal SIGKILL of the worker process. delay:/loss:
// perturb the simulator's message cost model (the measured backends
// have no modelled messages and ignore them).
//
// Usage:
//
//	orchrun [-p procs] [-backend sim|native|dist] [-mode static|taper|split|all]
//	        [-tasks n] [-cv x] [-seed s] [-unitwork w] [-fault plan]
//	        [-trace out.json|out.csv] [-gantt]
//	        [-cpuprofile f] [-memprofile f] file.graph
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"orchestra/internal/cliflag"
	"orchestra/internal/delirium"
	"orchestra/internal/dist"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/search"
	"orchestra/internal/trace"
	_ "orchestra/internal/workload" // registers the "nested" kernels
)

func main() {
	// A dist coordinator forks this same binary as its workers;
	// MaybeWorker diverts those forks into the worker loop before any
	// flag parsing happens.
	dist.MaybeWorker()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive
// the full flag-to-execution path and assert on exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("orchrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := fs.Int("p", 64, "number of processors (sim), worker goroutines (native; 0 = GOMAXPROCS), or worker processes (dist)")
	backend := cliflag.Backend(fs, "backend", "sim", "execution backend (sim, native, dist), with optional options: name[:k=v,...]")
	mode := cliflag.Modes(fs, "mode", "split", "execution mode: static, taper, split, or all")
	tasks := fs.Int("tasks", 2048, "tasks per operator without a tasks= annotation")
	nParam := fs.Int("n", 2048, "value of the symbolic problem size n in tasks= annotations")
	cv := fs.Float64("cv", 1.0, "coefficient of variation of task times")
	seed := fs.Uint64("seed", 1, "workload seed")
	unitWork := fs.Int("unitwork", 4000, "measured backends: floating-point iterations per task-time unit")
	kernel := fs.Bool("kernel", false, "bind real array kernels instead of synthetic timings and print the result digest (see -kernelwork)")
	kernelWork := fs.Int("kernelwork", 1, "with -kernel: function-evaluation rounds per task")
	traceOut := fs.String("trace", "", "write an execution trace to this file (Chrome trace-event JSON; CSV if the name ends in .csv)")
	gantt := fs.Bool("gantt", false, "print a per-operator Gantt/summary of the execution trace")
	omega := fs.Float64("omega", 0, "override TAPER's confidence width ω (0 = scheduler default)")
	autosplit := fs.Bool("autosplit", false, "profile the run, search the per-edge pipelining/chaining space against the profile, and re-run the searched graph (single -mode)")
	noChain := fs.Bool("nochain", false, "native split mode: disable cache chaining (annotated edges fall back to the prefix gate)")
	faultFlag := cliflag.Fault(fs, "fault", "inject a fault plan, e.g. 'crash:0@1,stall:2@0:0.01,delay:0.5' (see internal/fault)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: orchrun [flags] file.graph")
		return 2
	}
	modes := mode.Modes()
	tracing := *traceOut != "" || *gantt
	if tracing && len(modes) != 1 {
		fmt.Fprintln(stderr, "orchrun: -trace/-gantt need a single -mode, not a list")
		return 2
	}
	if *autosplit && len(modes) != 1 {
		fmt.Fprintln(stderr, "orchrun: -autosplit needs a single -mode, not a list")
		return 2
	}
	be, err := backend.New(*p)
	if err != nil {
		fmt.Fprintln(stderr, "orchrun:", err)
		return 2
	}
	profiling := *cpuprofile != "" || *memprofile != ""
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	text, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "orchrun:", err)
		return 1
	}
	g, err := delirium.Decode(string(text))
	if err != nil {
		fmt.Fprintln(stderr, "orchrun:", err)
		return 1
	}

	// Kernel selection, as a serializable name + parameters: the "array"
	// kernels under -kernel, real CPU spinning on the measured backends,
	// modeled log-normal costs on the simulator. The dist backend ships
	// this binding to its worker processes verbatim. Graphs with
	// expandable (kind=exp) nodes route to the "nested" workload
	// kernels regardless of the other flags: only they supply the
	// expansion rules (rule=dc, rule=vortex) such nodes need.
	params := rts.KernelParams{}
	var kernelName string
	switch {
	case g.HasExpansions():
		kernelName = "nested"
		params.SetInt("n", *nParam)
	case *kernel:
		kernelName = "array"
		params.SetInt("n", *nParam)
		params.SetInt("work", *kernelWork)
	case backend.Measured():
		kernelName = "spin"
		params.SetInt("unitwork", *unitWork)
	default:
		kernelName = "lognormal"
	}
	if !*kernel && kernelName != "nested" {
		params.SetInt("tasks", *tasks)
		params.SetInt("n", *nParam)
		params.SetFloat("cv", *cv)
		params.SetUint64("seed", *seed)
	}
	binding := rts.NamedBinding(kernelName, params)

	if st, err := g.Summarize(); err == nil {
		fmt.Fprintln(stdout, "graph:", st)
	}
	unit := ""
	if backend.Measured() {
		unit = " s"
	}
	plan := faultFlag.Plan()

	for _, m := range modes {
		// Rebind per execution: array kernels must start every run from
		// zeroed arrays, and re-instantiating the synthetic kernels is
		// cheap.
		bound, err := rts.Bind(g, binding)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 2
		}
		opts := rts.RunOpts{Processors: *p, Mode: m, Omega: *omega, Fault: plan}
		if *noChain {
			opts.Chain = rts.ChainOff
		}
		if backend.Measured() && !backend.Distributed() && profiling {
			// Label worker goroutines so profiles can be sliced by operator.
			opts.Labels = true
		}
		var col obs.Collector
		if tracing || *autosplit {
			opts.Sink = &col
		}
		r, err := be.Run(g, bound, opts)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		chained := ""
		if r.ChainHits+r.ChainSpills+r.ChainFallbacks > 0 {
			chained = fmt.Sprintf(", chained %d", r.ChainHits)
			if r.ChainSpills+r.ChainFallbacks > 0 {
				chained += fmt.Sprintf(" (spilled %d)", r.ChainSpills+r.ChainFallbacks)
			}
		}
		comm := ""
		if r.Comm > 0 {
			comm = fmt.Sprintf(", comm %.4g s/%d B", r.Comm, r.CommBytes)
		}
		fmt.Fprintf(stdout, "%-12s makespan %10.4g%s  speedup %8.1f  efficiency %5.1f%%  (chunks %d, steals %d, msgs %d%s%s)\n",
			m, r.Makespan, unit, r.Speedup(), 100*r.Efficiency(), r.Chunks, r.Steals, r.Messages, chained, comm)
		if d, ok := bound.Digest(); ok {
			fmt.Fprintf(stdout, "digest %s\n", d)
		}
		if tracing {
			if err := writeTrace(*traceOut, *gantt, col.Trace, stdout); err != nil {
				fmt.Fprintln(stderr, "orchrun:", err)
				return 1
			}
		}
		if *autosplit {
			if code := runSearched(be, g, binding, opts, col.Trace, r, unit, stdout, stderr); code != 0 {
				return code
			}
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "orchrun:", err)
			return 1
		}
	}
	return 0
}

// runSearched is the -autosplit second pass: distill the profiling
// run's trace, search the graph's per-edge pipelining/chaining space
// (the candidates only ever weaken edge attributes, so any schedule a
// candidate admits was admitted by the profiled graph and results are
// unchanged by construction), and re-run the emitted graph for
// comparison. Kernels are rebound from the original graph — reads
// follow the original edge attributes — and only the schedule follows
// the searched graph, so an array-kernel digest must match the
// profiled run's.
func runSearched(be rts.Backend, g *delirium.Graph, binding rts.Binding, opts rts.RunOpts, tr *obs.Trace, base trace.Result, unit string, stdout, stderr io.Writer) int {
	prof, err := search.FromTrace(tr, opts.Omega)
	if err != nil {
		fmt.Fprintln(stderr, "orchrun: autosplit:", err)
		return 1
	}
	plan, err := search.Run(prof, search.GraphCandidates(g), search.Options{
		P: opts.Processors, Omega: opts.Omega,
	})
	if err != nil {
		fmt.Fprintln(stderr, "orchrun: autosplit:", err)
		return 1
	}
	fmt.Fprintf(stdout, "autosplit: %d candidates, chose %q\n", len(plan.Scores), plan.Best.ID)
	for _, s := range plan.Scores {
		if s.Validated > 0 {
			mark := " "
			if s.Chosen {
				mark = "*"
			}
			fmt.Fprintf(stdout, "  %s %-40s model %10.4g  dry-run %10.4g\n", mark, s.ID, s.Model, s.Validated)
		}
	}
	if plan.Best.ID == "asis" {
		fmt.Fprintln(stdout, "autosplit: the graph as written is the profitable subset; keeping it")
		return 0
	}
	// Bind against the original graph (kernel read patterns follow its
	// edge attributes); the searched graph only reorders the schedule.
	bound, err := rts.Bind(g, binding)
	if err != nil {
		fmt.Fprintln(stderr, "orchrun: autosplit:", err)
		return 2
	}
	opts.Sink = nil
	r, err := be.Run(plan.Best.Graph, bound, opts)
	if err != nil {
		fmt.Fprintln(stderr, "orchrun: autosplit:", err)
		return 1
	}
	delta := 0.0
	if base.Makespan > 0 {
		delta = 100 * (base.Makespan - r.Makespan) / base.Makespan
	}
	fmt.Fprintf(stdout, "%-12s makespan %10.4g%s  speedup %8.1f  efficiency %5.1f%%  (%+.1f%% vs profiled run)\n",
		"searched", r.Makespan, unit, r.Speedup(), 100*r.Efficiency(), delta)
	if d, ok := bound.Digest(); ok {
		fmt.Fprintf(stdout, "digest %s\n", d)
	}
	return 0
}

// writeTrace delivers a collected trace: a Chrome trace-event file (or
// CSV for .csv paths) when path is non-empty, and/or the terminal
// summary when gantt is set.
func writeTrace(path string, gantt bool, t *obs.Trace, stdout io.Writer) error {
	if t == nil {
		return fmt.Errorf("no trace was collected")
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, ".csv") {
			err = obs.WriteCSV(f, t)
		} else {
			err = obs.WriteChromeTrace(f, t)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if gantt {
		fmt.Fprint(stdout, obs.Summary(t))
	}
	return nil
}
