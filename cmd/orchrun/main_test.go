package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"orchestra/internal/delirium"
)

// writeGraph encodes a small two-node pipelined graph to a temp file.
func writeGraph(t *testing.T) string {
	t.Helper()
	g := delirium.NewGraph("t")
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b", Bytes: 8, Pipelined: true})
	path := filepath.Join(t.TempDir(), "t.graph")
	if err := os.WriteFile(path, []byte(g.Encode()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUnknownMode(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-mode", "bogus", writeGraph(t)}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if msg := errw.String(); !strings.Contains(msg, `unknown mode "bogus"`) || !strings.Contains(msg, "static") {
		t.Errorf("stderr %q should name the bad mode and list valid values", msg)
	}
}

func TestRunUnknownBackend(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-backend", "gpu", writeGraph(t)}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if msg := errw.String(); !strings.Contains(msg, `unknown backend "gpu"`) || !strings.Contains(msg, "native") {
		t.Errorf("stderr %q should name the bad backend and list valid values", msg)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-no-such-flag", writeGraph(t)}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunMissingArgument(t *testing.T) {
	var out, errw strings.Builder
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "usage:") {
		t.Errorf("stderr %q should print usage", errw.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "nope.graph")}, &out, &errw); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestRunSimHappyPath(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-p", "8", "-tasks", "64", "-mode", "all", writeGraph(t)}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	lower := strings.ToLower(out.String())
	for _, mode := range []string{"static", "taper", "split"} {
		if !strings.Contains(lower, mode) {
			t.Errorf("output missing a line for mode %s:\n%s", mode, out.String())
		}
	}
}

func TestRunNativeHappyPath(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-backend", "native", "-p", "2", "-tasks", "64", "-unitwork", "50",
		"-mode", "split", writeGraph(t)}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(out.String(), " s ") {
		t.Errorf("native output should report wall-clock seconds:\n%s", out.String())
	}
}
