package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"orchestra/internal/delirium"
)

// writeGraph encodes a small two-node pipelined graph to a temp file.
func writeGraph(t *testing.T) string {
	t.Helper()
	g := delirium.NewGraph("t")
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b", Bytes: 8, Pipelined: true})
	path := filepath.Join(t.TempDir(), "t.graph")
	if err := os.WriteFile(path, []byte(g.Encode()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUnknownMode(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-mode", "bogus", writeGraph(t)}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if msg := errw.String(); !strings.Contains(msg, `unknown mode "bogus"`) || !strings.Contains(msg, "static") {
		t.Errorf("stderr %q should name the bad mode and list valid values", msg)
	}
}

func TestRunUnknownBackend(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-backend", "gpu", writeGraph(t)}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if msg := errw.String(); !strings.Contains(msg, `unknown backend "gpu"`) || !strings.Contains(msg, "native") {
		t.Errorf("stderr %q should name the bad backend and list valid values", msg)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-no-such-flag", writeGraph(t)}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunMissingArgument(t *testing.T) {
	var out, errw strings.Builder
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "usage:") {
		t.Errorf("stderr %q should print usage", errw.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{filepath.Join(t.TempDir(), "nope.graph")}, &out, &errw); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestRunSimHappyPath(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-p", "8", "-tasks", "64", "-mode", "all", writeGraph(t)}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	lower := strings.ToLower(out.String())
	for _, mode := range []string{"static", "taper", "split"} {
		if !strings.Contains(lower, mode) {
			t.Errorf("output missing a line for mode %s:\n%s", mode, out.String())
		}
	}
}

func TestRunNativeHappyPath(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-backend", "native", "-p", "2", "-tasks", "64", "-unitwork", "50",
		"-mode", "split", writeGraph(t)}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(out.String(), " s ") {
		t.Errorf("native output should report wall-clock seconds:\n%s", out.String())
	}
}

func TestRunTraceWritesChromeJSON(t *testing.T) {
	for _, backend := range []string{"sim", "native"} {
		out := filepath.Join(t.TempDir(), "out.json")
		var stdout, errw strings.Builder
		code := run([]string{"-backend", backend, "-p", "4", "-tasks", "64",
			"-unitwork", "50", "-mode", "split", "-trace", out, writeGraph(t)}, &stdout, &errw)
		if code != 0 {
			t.Fatalf("%s: exit code = %d (stderr: %s)", backend, code, errw.String())
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s: trace is not valid JSON: %v", backend, err)
		}
		var spans int
		for _, e := range doc.TraceEvents {
			if e["ph"] == "X" {
				spans++
			}
		}
		if spans == 0 {
			t.Errorf("%s: trace has no chunk spans among %d events", backend, len(doc.TraceEvents))
		}
	}
}

func TestRunTraceCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.csv")
	var stdout, errw strings.Builder
	code := run([]string{"-p", "4", "-tasks", "64", "-mode", "taper",
		"-trace", out, writeGraph(t)}, &stdout, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, errw.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], "kind") {
		t.Fatalf("CSV trace should have a header and rows, got %d lines", len(lines))
	}
}

func TestRunGanttSummary(t *testing.T) {
	var stdout, errw strings.Builder
	code := run([]string{"-p", "4", "-tasks", "64", "-mode", "split",
		"-gantt", writeGraph(t)}, &stdout, &errw)
	if code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(stdout.String(), "worker 0") {
		t.Errorf("gantt output missing worker rows:\n%s", stdout.String())
	}
}

func TestRunTraceRejectsModeList(t *testing.T) {
	var stdout, errw strings.Builder
	code := run([]string{"-mode", "all", "-trace",
		filepath.Join(t.TempDir(), "out.json"), writeGraph(t)}, &stdout, &errw)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "single -mode") {
		t.Errorf("stderr should explain the single-mode requirement: %s", errw.String())
	}
}
