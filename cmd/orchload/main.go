// Command orchload replays a stream of concurrent job submissions
// against a running orchserve daemon and reports throughput and
// latency percentiles — the serve benchmark. With -verify it also
// checks end-to-end correctness: every job's result digest must be
// bitwise identical to a local one-shot run of the same program on a
// fresh native backend.
//
// Usage:
//
//	orchserve -addr :8021 &
//	orchload -addr http://127.0.0.1:8021 -jobs 1000 -concurrency 16 \
//	         -n 512 -verify examples/figure1.f
//
// The summary goes to stdout; the full series is written to -out
// (default BENCH_serve.json, schema 1):
//
//	{"schema": 1, "jobs": ..., "throughput_jps": ...,
//	 "latency_s": {"mean": ..., "p50": ..., "p99": ..., "p999": ...},
//	 "digest_mismatches": 0, "cache_hits": ...}
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"orchestra/internal/cliflag"
	"orchestra/internal/core"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/serve"
	"orchestra/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchDoc is the BENCH_serve.json schema (schema 1).
type benchDoc struct {
	Schema           int        `json:"schema"`
	Jobs             int        `json:"jobs"`
	Concurrency      int        `json:"concurrency"`
	PoolWorkers      int        `json:"pool_workers"`
	Mode             string     `json:"mode"`
	N                int        `json:"n"`
	DurationS        float64    `json:"duration_s"`
	ThroughputJPS    float64    `json:"throughput_jps"`
	Latency          latencyDoc `json:"latency_s"`
	Errors           int        `json:"errors"`
	Digest           string     `json:"digest,omitempty"`
	DigestMismatches int        `json:"digest_mismatches"`
	CacheHits        int64      `json:"cache_hits"`
	CacheMisses      int64      `json:"cache_misses"`
}

type latencyDoc struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("orchload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8021", "orchserve base URL")
	jobs := fs.Int("jobs", 1000, "total jobs to submit")
	conc := fs.Int("concurrency", 16, "concurrent in-flight submissions")
	n := fs.Int("n", 256, "per-operator task count for each job")
	work := fs.Int("work", 1, "kernel work rounds per task")
	procs := fs.Int("p", 0, "per-job processor cap (0 = allocator's choice)")
	mode := cliflag.Modes(fs, "mode", "split", "execution mode for every job")
	verify := fs.Bool("verify", false, "compare every job's digest against a local one-shot run")
	out := fs.String("out", "BENCH_serve.json", "benchmark output file (empty = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: orchload [flags] file.f")
		return 2
	}
	m, err := mode.Single()
	if err != nil {
		fmt.Fprintln(stderr, "orchload: -mode:", err)
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "orchload:", err)
		return 1
	}

	// Local reference digest: one-shot compile + run on a private
	// backend, entirely outside the daemon.
	refDigest := ""
	if *verify {
		refDigest, err = localDigest(string(src), *n, *work, m)
		if err != nil {
			fmt.Fprintln(stderr, "orchload: local reference run:", err)
			return 1
		}
	}

	req := serve.SubmitRequest{
		Program:    string(src),
		N:          *n,
		Work:       *work,
		Mode:       m.String(),
		Processors: *procs,
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(stderr, "orchload:", err)
		return 1
	}

	client := &http.Client{}
	url := strings.TrimRight(*addr, "/") + "/api/v1/jobs"
	latencies := make([]float64, *jobs)
	var mu sync.Mutex
	errs := 0
	mismatches := 0

	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				st, err := submit(client, url, body)
				lat := time.Since(t0).Seconds()
				mu.Lock()
				latencies[i] = lat
				if err != nil {
					errs++
					if errs <= 3 {
						fmt.Fprintln(stderr, "orchload:", err)
					}
				} else if refDigest != "" && st.Digest != refDigest {
					mismatches++
					if mismatches <= 3 {
						fmt.Fprintf(stderr, "orchload: %s digest %.12s... != local %.12s...\n",
							st.ID, st.Digest, refDigest)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start).Seconds()

	stats, statsErr := fetchStats(client, *addr)

	doc := benchDoc{
		Schema:           trace.SchemaVersion,
		Jobs:             *jobs,
		Concurrency:      *conc,
		Mode:             m.String(),
		N:                *n,
		DurationS:        wall,
		ThroughputJPS:    float64(*jobs) / wall,
		Latency:          summarize(latencies),
		Errors:           errs,
		Digest:           refDigest,
		DigestMismatches: mismatches,
	}
	if statsErr == nil {
		doc.PoolWorkers = stats.Pool.Size
		doc.CacheHits = stats.Cache.Hits
		doc.CacheMisses = stats.Cache.Misses
	}

	fmt.Fprintf(stdout, "%d jobs x %d concurrent on %d workers: %.1f jobs/s\n",
		doc.Jobs, doc.Concurrency, doc.PoolWorkers, doc.ThroughputJPS)
	fmt.Fprintf(stdout, "latency  mean %s  p50 %s  p90 %s  p99 %s  p999 %s  max %s\n",
		ms(doc.Latency.Mean), ms(doc.Latency.P50), ms(doc.Latency.P90),
		ms(doc.Latency.P99), ms(doc.Latency.P999), ms(doc.Latency.Max))
	fmt.Fprintf(stdout, "cache    %d hits / %d misses\n", doc.CacheHits, doc.CacheMisses)
	if *verify {
		fmt.Fprintf(stdout, "verify   %d digest mismatches against local run\n", mismatches)
	}
	if errs > 0 {
		fmt.Fprintf(stdout, "errors   %d\n", errs)
	}

	if *out != "" {
		data, _ := json.MarshalIndent(doc, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "orchload:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if errs > 0 || mismatches > 0 {
		return 1
	}
	return 0
}

// submit posts one synchronous job and decodes its terminal status.
func submit(client *http.Client, url string, body []byte) (*serve.JobStatus, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return &st, fmt.Errorf("job failed (%s): %s", resp.Status, st.Error)
	}
	if st.State != serve.StateDone {
		return &st, fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return &st, nil
}

func fetchStats(client *http.Client, addr string) (*serve.Stats, error) {
	resp, err := client.Get(strings.TrimRight(addr, "/") + "/api/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// localDigest compiles and runs the program once on a private native
// backend — no pool, no daemon — and returns the result digest.
func localDigest(src string, n, work int, m rts.Mode) (string, error) {
	out, err := core.CompileSource(src, core.DefaultOptions())
	if err != nil {
		return "", err
	}
	params := rts.KernelParams{}
	params.SetInt("n", n)
	params.SetInt("work", work)
	bound, err := rts.Bind(out.Graph, rts.NamedBinding("array", params))
	if err != nil {
		return "", err
	}
	if _, err := (native.Backend{}.Run(out.Graph, bound, rts.RunOpts{Mode: m})); err != nil {
		return "", err
	}
	d, ok := bound.Digest()
	if !ok {
		return "", fmt.Errorf("array kernel produced no digest")
	}
	return d, nil
}

// summarize computes the latency document from per-job seconds.
func summarize(lats []float64) latencyDoc {
	if len(lats) == 0 {
		return latencyDoc{}
	}
	s := append([]float64(nil), lats...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return latencyDoc{
		Mean: sum / float64(len(s)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
		P999: pct(0.999),
		Max:  s[len(s)-1],
	}
}

func ms(v float64) string { return fmt.Sprintf("%.2fms", v*1e3) }
