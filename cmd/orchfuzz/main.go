// Command orchfuzz runs the differential conformance fuzzer: it
// generates random mini-Fortran programs, compiles each one, and runs
// it through the reference interpreter, the lowered sequential
// baseline, the discrete-event simulator, and the native goroutine
// backend across a matrix of processor counts and scheduling policies,
// diffing final memory bitwise and checking the simulator's dispatch
// order against the dataflow graph. Any disagreement is a bug in the
// compiler, the lowering, or an orchestration backend.
//
// Usage:
//
//	orchfuzz -seed 1 -count 1000        # campaign over seeds 1..1000
//	orchfuzz -seed 14 -v                # one seed, print the program
//	orchfuzz -minimize 14 -out repro.f  # shrink seed 14's divergence
//	orchfuzz -seed 14 -trace-dir traces # export diverging schedules
//	orchfuzz -faults -count 200         # campaign under fault injection
//	orchfuzz -search -count 200         # campaign through the split search
//	orchfuzz -dist -count 200           # campaign including the dist backend
//	orchfuzz -nested -count 200         # campaign over recursive dataflow programs
//
// With -dist, the backend matrix gains the distributed runtime: each
// program additionally runs on forked worker processes over Unix
// sockets (the coordinator re-executes this binary in worker mode),
// with the binding shipped by kernel name and rebuilt on each worker,
// and every final state compared bitwise against the same sequential
// baseline as the in-process backends.
//
// With -search, each program's lowered graph is additionally profiled
// on the simulator, fed through the profile-guided split search
// (internal/search), and the searched graph — the search may turn
// per-edge pipelining and chaining off — is run across a compact
// backend matrix and compared bitwise against the sequential baseline:
// the search must never change values, only the schedule.
//
// With -nested, the generator emits recursive dataflow programs
// instead of mini-Fortran: small graphs whose expandable operators
// carry seed-derived expansion rules that materialize further random
// sub-graphs (possibly themselves expandable) at execution time. Each
// program is statically unrolled (internal/compile) into its flat
// reference, and every runtime-expanding execution across the backend
// matrix must reproduce the reference's memory digest bitwise.
//
// With -faults, each program additionally runs under a seed-derived
// random fault plan (worker crashes, stalls, slowdowns, message
// delay/loss — always leaving a survivor) on both backends, and the
// faulted final state is compared bitwise against the undisturbed
// sequential baseline: failure tolerance means faults may cost time,
// never values. A divergence prints the plan alongside the program.
//
// With -trace-dir, every diverging backend configuration is re-executed
// with event tracing and its schedule written as a Chrome trace-event
// file (seed<N>-<config>.json) into the directory, for inspection in
// Perfetto alongside the divergence report.
//
// The exit status is nonzero when any checked program diverged.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"orchestra/internal/cliflag"
	"orchestra/internal/dist"
	"orchestra/internal/fault"
	"orchestra/internal/fuzz"
	"orchestra/internal/obs"
	"orchestra/internal/source"
)

func main() {
	// The dist rung's coordinator forks this binary as its workers;
	// divert those forks before touching flags.
	dist.MaybeWorker()
	var (
		seed     = flag.Uint64("seed", 1, "first generator seed")
		count    = flag.Int("count", 1, "number of programs to check")
		verbose  = flag.Bool("v", false, "print each program and verdict")
		minimize = flag.Uint64("minimize", 0, "minimize the divergence at this seed and exit")
		out      = flag.String("out", "", "write the minimized reproducer here instead of stdout")
		traceDir = flag.String("trace-dir", "", "write Chrome traces of diverging configurations into this directory")
		faults   = flag.Bool("faults", false, "check each program under a seed-derived random fault plan")
		searchIt = flag.Bool("search", false, "check each program through the profile-guided split search")
		distIt   = flag.Bool("dist", false, "extend the backend matrix with the distributed (multi-process) backend")
		nested   = flag.Bool("nested", false, "check recursive dataflow programs against their statically unrolled references")
	)
	fixedFault := cliflag.Fault(flag.CommandLine, "fault", "check each program under this exact fault plan (internal/fault syntax) instead of random ones")
	flag.Parse()
	cfg := fuzz.DefaultGenConfig()

	if *minimize != 0 {
		os.Exit(runMinimize(*minimize, cfg, *out))
	}

	skips := 0
	failed := 0
	kindTotals := map[string]int{}
	for s := *seed; s < *seed+uint64(*count); s++ {
		var rep *fuzz.Report
		var prog *source.Program
		progText := "" // printable program; set when prog is nil (nested rung)
		plan := ""
		switch {
		case *nested:
			var c *fuzz.NestedCase
			rep, c = fuzz.CheckSeedNested(s)
			progText = c.String()
			plan = " nested"
		case fixedFault.Plan() != nil:
			prog = fuzz.NewGen(s, cfg).Program()
			rep = fuzz.CheckProgramFaults(prog, s, fixedFault.Plan())
			plan = " under " + fixedFault.Plan().String()
		case *faults:
			var p *fault.Plan
			rep, prog, p = fuzz.CheckSeedFaults(s, cfg)
			plan = " under " + p.String()
		case *searchIt:
			rep, prog = fuzz.CheckSeedSearched(s, cfg)
			plan = " searched"
		case *distIt:
			rep, prog = fuzz.CheckSeedDist(s, cfg)
			plan = " +dist"
		default:
			rep, prog = fuzz.CheckSeed(s, cfg)
		}
		for k, n := range rep.Kinds {
			kindTotals[k] += n
		}
		switch {
		case rep.Skip != "":
			skips++
			if *verbose {
				fmt.Printf("seed %d: skip: %s\n", s, rep.Skip)
			}
		case rep.Failed():
			failed++
			fmt.Printf("seed %d%s: %s", s, plan, rep)
			if prog != nil {
				progText = source.Format(prog)
			}
			fmt.Printf("--- program (seed %d) ---\n%s---\n", s, progText)
			if *traceDir != "" {
				writeTraces(*traceDir, s, rep)
			}
		case *verbose:
			fmt.Printf("seed %d%s: ok\n", s, plan)
			if prog != nil {
				progText = source.Format(prog)
			}
			fmt.Print(progText)
		}
	}
	checked := *count - skips
	fmt.Printf("%d programs: %d checked, %d skipped, %d diverged\n",
		*count, checked, skips, failed)
	var kinds []string
	for k := range kindTotals {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  kernels %-10s %d\n", k, kindTotals[k])
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeTraces exports each diverging configuration's captured schedule
// as a Chrome trace-event file under dir.
func writeTraces(dir string, seed uint64, rep *fuzz.Report) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "orchfuzz:", err)
		return
	}
	seen := map[string]bool{}
	for _, d := range rep.Divs {
		if d.Trace == nil || seen[d.Config] {
			continue
		}
		seen[d.Config] = true
		name := fmt.Sprintf("seed%d-%s.json", seed,
			strings.NewReplacer("/", "_", "=", "").Replace(d.Config))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchfuzz:", err)
			continue
		}
		err = obs.WriteChromeTrace(f, d.Trace)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "orchfuzz:", err)
			continue
		}
		fmt.Printf("wrote trace %s\n", filepath.Join(dir, name))
	}
}

// runMinimize shrinks the diverging program for one seed, keeping any
// divergence alive (not necessarily the original one: a smaller
// program that trips a different rung is still a reproducer).
func runMinimize(seed uint64, cfg fuzz.GenConfig, out string) int {
	rep, prog := fuzz.CheckSeed(seed, cfg)
	if rep.Skip != "" {
		fmt.Fprintf(os.Stderr, "seed %d was skipped (%s); nothing to minimize\n", seed, rep.Skip)
		return 1
	}
	if !rep.Failed() {
		fmt.Fprintf(os.Stderr, "seed %d does not diverge; nothing to minimize\n", seed)
		return 1
	}
	fmt.Fprintf(os.Stderr, "seed %d: %s", seed, rep)
	min := fuzz.Minimize(prog, func(p *source.Program) bool {
		return fuzz.CheckProgram(p, seed).Failed()
	})
	final := fuzz.CheckProgram(min, seed)
	text := source.Format(min)
	fmt.Fprintf(os.Stderr, "minimized to %d bytes; still: %s", len(text), final)
	if out != "" {
		if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		return 0
	}
	fmt.Print(text)
	return 0
}
