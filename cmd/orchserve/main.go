// Command orchserve is the orchestration daemon: a long-running HTTP
// service that keeps one warm pool of native workers alive for its
// whole lifetime, compiles each distinct submitted program once into a
// content-addressed graph cache, and multiplexes concurrent jobs onto
// the shared pool with the paper's finishing-time-equalizing processor
// allocator deciding each job's worker grant.
//
// API (JSON over HTTP; see internal/serve):
//
//	POST /api/v1/jobs            submit a program or graph (sync, or
//	                             "async": true for a job id to poll)
//	GET  /api/v1/jobs/{id}       status/result (?wait=1 blocks)
//	POST /api/v1/jobs/{id}/cancel
//	GET  /api/v1/stats           pool occupancy, graph-cache hit rates,
//	                             per-job allocation decisions
//	GET  /healthz
//
// Example:
//
//	orchserve -addr :8021 -pool 8 &
//	curl -s localhost:8021/api/v1/jobs -d '{
//	  "program": "'"$(sed -e 's/$/\\n/' examples/figure1.f | tr -d '\n')"'",
//	  "mode": "split", "n": 4096
//	}'
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: running jobs are
// canceled at their next chunk boundaries, the pool drains, and the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"orchestra/internal/cliflag"
	"orchestra/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8021", "listen address")
	pool := flag.Int("pool", 0, "warm pool size in worker goroutines (0 = GOMAXPROCS)")
	mode := cliflag.Modes(flag.CommandLine, "default-mode", "split", "execution mode for submissions that omit one")
	omega := flag.Float64("omega", 0, "default TAPER confidence width ω (0 = scheduler default)")
	flag.Parse()

	m, err := mode.Single()
	if err != nil {
		fmt.Fprintln(os.Stderr, "orchserve: -default-mode:", err)
		os.Exit(2)
	}

	s := serve.New(serve.Config{PoolSize: *pool, DefaultMode: m, Omega: *omega})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		fmt.Fprintln(os.Stderr, "orchserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		s.Close()
	}()

	fmt.Fprintf(os.Stderr, "orchserve: listening on %s (pool %d workers, default mode %s)\n",
		*addr, s.Stats().Pool.Size, m)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "orchserve:", err)
		os.Exit(1)
	}
	<-done
}
